package ahp

import (
	"math"
	"math/rand"
	"testing"
)

// randomReciprocal builds a random valid comparison matrix of order n.
func randomReciprocal(rng *rand.Rand, n int) *PairwiseMatrix {
	judgments := make([]float64, n*(n-1)/2)
	for i := range judgments {
		// Random Saaty judgment in [1/9, 9].
		v := float64(1 + rng.Intn(9))
		if rng.Intn(2) == 0 {
			v = 1 / v
		}
		judgments[i] = v
	}
	pm, err := FromUpperTriangle(n, judgments)
	if err != nil {
		panic(err)
	}
	return pm
}

func TestWeightsAllMethodsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	methods := []WeightMethod{ColumnNormalizedRowMean, Eigenvector, GeometricMean}
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(6)
		pm := randomReciprocal(rng, n)
		for _, m := range methods {
			w, err := pm.Weights(m)
			if err != nil {
				t.Fatalf("%v: %v", m, err)
			}
			if len(w) != n {
				t.Fatalf("%v: len = %d, want %d", m, len(w), n)
			}
			sum := 0.0
			for _, x := range w {
				if x <= 0 {
					t.Fatalf("%v: non-positive weight %v", m, x)
				}
				sum += x
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("%v: weights sum to %v", m, sum)
			}
		}
	}
}

// TestWeightsAgreeOnConsistentMatrix: when the matrix is perfectly
// consistent (a[i][j] = w_i/w_j) every derivation method must recover the
// same weights exactly.
func TestWeightsAgreeOnConsistentMatrix(t *testing.T) {
	w := []float64{0.5, 0.3, 0.2}
	rows := make([][]float64, 3)
	for i := range rows {
		rows[i] = make([]float64, 3)
		for j := range rows[i] {
			rows[i][j] = w[i] / w[j]
		}
	}
	pm, err := NewPairwiseMatrix(rows)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []WeightMethod{ColumnNormalizedRowMean, Eigenvector, GeometricMean} {
		got, err := pm.Weights(m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		for i := range w {
			if math.Abs(got[i]-w[i]) > 1e-6 {
				t.Errorf("%v: w[%d] = %v, want %v", m, i, got[i], w[i])
			}
		}
	}
}

func TestWeightsOrderingMatchesDominance(t *testing.T) {
	// C1 dominates C2 dominates C3, so weights must be strictly decreasing.
	pm := PaperExampleMatrix()
	for _, m := range []WeightMethod{ColumnNormalizedRowMean, Eigenvector, GeometricMean} {
		w, err := pm.Weights(m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !(w[0] > w[1] && w[1] > w[2]) {
			t.Errorf("%v: weights not decreasing: %v", m, w)
		}
	}
}

func TestWeightsUnknownMethod(t *testing.T) {
	if _, err := PaperExampleMatrix().Weights(WeightMethod(99)); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestWeightMethodString(t *testing.T) {
	tests := map[WeightMethod]string{
		ColumnNormalizedRowMean: "column-normalized-row-mean",
		Eigenvector:             "eigenvector",
		GeometricMean:           "geometric-mean",
		WeightMethod(42):        "WeightMethod(42)",
	}
	for m, want := range tests {
		if got := m.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(m), got, want)
		}
	}
}

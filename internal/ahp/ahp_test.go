package ahp

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestNewPairwiseMatrixValid(t *testing.T) {
	pm, err := NewPairwiseMatrix([][]float64{
		{1, 2},
		{0.5, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if pm.N() != 2 {
		t.Errorf("N = %d, want 2", pm.N())
	}
	if pm.At(0, 1) != 2 {
		t.Errorf("At(0,1) = %v, want 2", pm.At(0, 1))
	}
}

func TestNewPairwiseMatrixRejections(t *testing.T) {
	tests := []struct {
		name    string
		rows    [][]float64
		wantErr error
	}{
		{"non-square", [][]float64{{1, 2}}, nil},
		{"empty", [][]float64{}, ErrTooSmall},
		{"zero entry", [][]float64{{1, 0}, {0, 1}}, ErrNotPositive},
		{"negative entry", [][]float64{{1, -2}, {-0.5, 1}}, ErrNotPositive},
		{"bad diagonal", [][]float64{{2, 1}, {1, 2}}, ErrNotReciprocal},
		{"not reciprocal", [][]float64{{1, 2}, {2, 1}}, ErrNotReciprocal},
		{"beyond saaty scale", [][]float64{{1, 10}, {0.1, 1}}, ErrBadScale},
		{"nan", [][]float64{{1, math.NaN()}, {1, 1}}, ErrNotPositive},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewPairwiseMatrix(tt.rows)
			if err == nil {
				t.Fatal("invalid matrix accepted")
			}
			if tt.wantErr != nil && !errors.Is(err, tt.wantErr) {
				t.Errorf("err = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestFromUpperTriangle(t *testing.T) {
	// Rebuild the paper's Table I matrix from its three upper judgments.
	pm, err := FromUpperTriangle(3, []float64{3, 5, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := PaperExampleMatrix()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(pm.At(i, j)-want.At(i, j)) > 1e-12 {
				t.Errorf("a[%d][%d] = %v, want %v", i, j, pm.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestFromUpperTriangleErrors(t *testing.T) {
	if _, err := FromUpperTriangle(0, nil); !errors.Is(err, ErrTooSmall) {
		t.Errorf("n=0 err = %v", err)
	}
	if _, err := FromUpperTriangle(3, []float64{1, 2}); err == nil {
		t.Error("wrong judgment count accepted")
	}
	if _, err := FromUpperTriangle(2, []float64{-1}); !errors.Is(err, ErrNotPositive) {
		t.Errorf("negative judgment err = %v", err)
	}
}

func TestFromUpperTriangleSingleCriterion(t *testing.T) {
	pm, err := FromUpperTriangle(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := pm.PaperWeights()
	if len(w) != 1 || math.Abs(w[0]-1) > 1e-12 {
		t.Errorf("weights = %v, want [1]", w)
	}
}

// TestPaperTableI verifies the judgments quoted in the paper's Table I.
func TestPaperTableI(t *testing.T) {
	pm := PaperExampleMatrix()
	if pm.At(0, 1) != 3 || pm.At(0, 2) != 5 || pm.At(1, 2) != 2 {
		t.Error("Table I judgments wrong")
	}
	if pm.At(1, 0) != 1.0/3 || pm.At(2, 0) != 1.0/5 || pm.At(2, 1) != 0.5 {
		t.Error("Table I reciprocals wrong")
	}
}

// TestPaperTableII verifies the column-normalized matrix (Table II) and the
// derived weight vector W = (0.648, 0.230, 0.122) quoted in Section IV-B.
func TestPaperTableII(t *testing.T) {
	pm := PaperExampleMatrix()
	norm := pm.Normalized()
	wantNorm := [][]float64{
		{0.652, 0.667, 0.625},
		{0.217, 0.222, 0.250},
		{0.131, 0.111, 0.125},
	}
	for i := range wantNorm {
		for j := range wantNorm[i] {
			if math.Abs(norm.At(i, j)-wantNorm[i][j]) > 0.0015 {
				t.Errorf("normalized[%d][%d] = %.4f, want %.3f", i, j, norm.At(i, j), wantNorm[i][j])
			}
		}
	}
	w := pm.PaperWeights()
	wantW := []float64{0.648, 0.230, 0.122}
	for i := range wantW {
		if math.Abs(w[i]-wantW[i]) > 0.001 {
			t.Errorf("w[%d] = %.4f, want %.3f", i, w[i], wantW[i])
		}
	}
}

func TestMatrixReturnsCopy(t *testing.T) {
	pm := PaperExampleMatrix()
	m := pm.Matrix()
	m.Set(0, 1, 99)
	if pm.At(0, 1) != 3 {
		t.Error("Matrix() aliased internal state")
	}
}

func TestPairwiseMatrixString(t *testing.T) {
	if s := PaperExampleMatrix().String(); !strings.Contains(s, "3.0000") {
		t.Errorf("String = %q", s)
	}
}

package sim

import (
	"bytes"
	"testing"

	"paydemand/internal/workload"
)

// TestShardedTrialDeterminism is the geo-sharded engine's end-to-end
// golden test: trial JSON must be byte-identical between the historical
// single engine (Shards=0) and the sharded engine at every region count,
// crossed with round-level parallelism — sharding and speculation
// compose without changing a byte.
func TestShardedTrialDeterminism(t *testing.T) {
	scenarios := []struct {
		name string
		cfg  Config
	}{
		{
			// Paper-shaped workload.
			name: "paper",
			cfg: Config{
				Workload: workload.Config{NumUsers: 60, NumTasks: 15, Required: 6},
				Rounds:   6,
			},
		},
		{
			// Mobility + churn: users walk across region boundaries between
			// rounds, so the halo mirroring and partition window are
			// re-exercised with fresh geometry every round.
			name: "churn",
			cfg: Config{
				Workload:  workload.Config{NumUsers: 40, NumTasks: 12, Required: 4},
				Rounds:    5,
				ChurnRate: 0.1,
				Mobility:  MobilityRandomWaypoint,
			},
		},
		{
			// Bids + budget capability: the auction's bid assembly must be a
			// function of the global user slice, not of any per-region view.
			name: "auction",
			cfg: Config{
				Workload:  workload.Config{NumUsers: 50, NumTasks: 12, Required: 4},
				Rounds:    5,
				Mechanism: MechanismAuction,
			},
		},
		{
			// Mobility-forecast capability under moving users.
			name: "incentme",
			cfg: Config{
				Workload:            workload.Config{NumUsers: 50, NumTasks: 12, Required: 4},
				Rounds:              5,
				Mechanism:           MechanismIncentMe,
				Mobility:            MobilityRandomWaypoint,
				MobilityUncertainty: 0.3,
			},
		},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			base, _ := trialJSON(t, sc.cfg, 1717)
			for _, shards := range []int{1, 2, 4} {
				for _, workers := range []int{1, 8} {
					cfg := sc.cfg
					cfg.Shards = shards
					cfg.RoundParallelism = workers
					got, _ := trialJSON(t, cfg, 1717)
					if !bytes.Equal(base, got) {
						t.Errorf("shards=%d workers=%d: trial JSON differs from single engine (lens %d vs %d)",
							shards, workers, len(got), len(base))
					}
				}
			}
		})
	}
}

// TestShardsValidation pins the config contract: negative shard counts
// are rejected, and Shards composes with every algorithm.
func TestShardsValidation(t *testing.T) {
	cfg := Config{
		Workload: workload.Config{NumUsers: 10, NumTasks: 5, Required: 2},
		Rounds:   2,
		Shards:   -1,
	}
	if _, err := New(cfg, 1); err == nil {
		t.Fatal("negative shards accepted")
	}
	for _, alg := range []AlgorithmKind{AlgorithmGreedy, AlgorithmAuto} {
		cfg := Config{
			Workload:  workload.Config{NumUsers: 10, NumTasks: 5, Required: 2},
			Rounds:    2,
			Shards:    3,
			Algorithm: alg,
		}
		s, err := New(cfg, 1)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if _, err := s.Run(nil); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
	}
}

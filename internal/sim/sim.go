package sim

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"paydemand/internal/agent"
	"paydemand/internal/geo"
	"paydemand/internal/incentive"
	"paydemand/internal/metrics"
	"paydemand/internal/mobility"
	"paydemand/internal/selection"
	"paydemand/internal/stats"
	"paydemand/internal/task"
	"paydemand/internal/workload"
)

// Observer receives the simulation's per-round events. All methods are
// optional no-ops in the embedded BaseObserver; the experiment harness uses
// observers to capture data the final metrics do not retain (for example
// per-user plans at a specific round for Fig. 5).
type Observer interface {
	// RoundStart fires after reward update and task publication.
	RoundStart(round int, rewards map[task.ID]float64)
	// UserPlanned fires after each user's task selection, whether or not
	// the plan is empty. The problem (including its Candidates slice and
	// shared round context) is backed by simulation-owned buffers that are
	// reused for the next user: it is valid only for the duration of the
	// call, so observers that retain it must copy what they keep. The plan
	// is the observer's to keep.
	UserPlanned(round int, userID int, problem selection.Problem, plan selection.Plan)
	// RoundEnd fires after all users have acted, with the round's stats.
	RoundEnd(round int, stats metrics.RoundStats)
}

// BaseObserver is a no-op Observer for embedding.
type BaseObserver struct{}

var _ Observer = BaseObserver{}

// RoundStart implements Observer.
func (BaseObserver) RoundStart(int, map[task.ID]float64) {}

// UserPlanned implements Observer.
func (BaseObserver) UserPlanned(int, int, selection.Problem, selection.Plan) {}

// RoundEnd implements Observer.
func (BaseObserver) RoundEnd(int, metrics.RoundStats) {}

// Simulation is one configured run over one generated scenario. Create
// with New (fresh scenario) or NewFromScenario (pre-built scenario), then
// call Run exactly once.
type Simulation struct {
	cfg      Config
	scenario workload.Scenario
	board    *task.Board
	users    []*agent.User
	mech     incentive.Mechanism
	alg      selection.Algorithm
	orderRNG *stats.RNG
	resetRNG *stats.RNG
	churnRNG *stats.RNG
	mobRNG   *stats.RNG
	mob      mobility.Model
	nextUser int
	// departedProfits holds the profits of users that churned out, so the
	// final profit accounting covers everyone who participated.
	departedProfits []float64
	ran             bool

	// Per-round scratch, reused across rounds and users so the steady-state
	// round loop runs without allocations: the shared solver context over
	// the round's open tasks, its location slice, the per-user candidate
	// buffer (see Observer.UserPlanned for the resulting aliasing rules),
	// the mechanism's task views, and the idle-time tracker.
	roundCtx *selection.RoundContext
	taskLocs []geo.Point
	candBuf  []selection.Candidate
	viewBuf  []incentive.TaskView
	idleBuf  []float64
	userLocs []geo.Point
	// permBuf is the grow-only per-round user-order permutation buffer
	// (filled by PermInto with the exact draws Perm used to make).
	permBuf []int

	// Speculative parallel round engine state (RoundParallelism > 1): the
	// solver pool giving each worker goroutine its own scratch-owning
	// Algorithm, the per-position speculation slots (each with its own
	// grow-only candidate buffer so a speculative problem stays valid
	// through its commit), and the IDs of tasks filled by commits of the
	// current round (the conflict set that triggers inline replays).
	pool      *selection.SolverPool
	spec      []speculation
	closedBuf []task.ID
}

// speculation is one user's concurrently solved selection for the current
// round: the problem built against the round-start snapshot (over the
// slot's own candidate buffer), the resulting plan, and any solver error
// (surfaced at the user's commit position, exactly where the sequential
// loop would have hit it).
type speculation struct {
	problem selection.Problem
	cand    []selection.Candidate
	plan    selection.Plan
	err     error
}

// New generates a scenario from cfg.Workload with the given seed and
// prepares the simulation. The same (cfg, seed) pair always produces the
// same result.
func New(cfg Config, seed int64) (*Simulation, error) {
	root := stats.NewRNG(seed)
	scenarioRNG := root.Split()
	sc, err := workload.Generate(scenarioRNG, cfg.Workload)
	if err != nil {
		return nil, err
	}
	return NewFromScenario(cfg, sc, root.Int63())
}

// NewFromScenario prepares a simulation over a caller-supplied scenario.
// seed drives the remaining randomness (fixed-mechanism level draws, user
// ordering, optional location resets).
func NewFromScenario(cfg Config, sc workload.Scenario, seed int64) (*Simulation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	root := stats.NewRNG(seed)
	mechRNG := root.Split()
	orderRNG := root.Split()
	resetRNG := root.Split()
	churnRNG := root.Split()
	jitterRNG := root.Split()
	mobRNG := root.Split()

	board, err := task.NewBoard(sc.Tasks)
	if err != nil {
		return nil, err
	}
	mech, err := cfg.buildMechanism(board.TotalRequired(), mechRNG)
	if err != nil {
		return nil, err
	}
	alg, err := cfg.buildAlgorithm()
	if err != nil {
		return nil, err
	}
	mob, err := cfg.buildMobility(sc.Area)
	if err != nil {
		return nil, err
	}
	s := &Simulation{
		cfg:      cfg,
		scenario: sc,
		board:    board,
		mech:     mech,
		alg:      alg,
		orderRNG: orderRNG,
		resetRNG: resetRNG,
		churnRNG: churnRNG,
		mobRNG:   mobRNG,
		mob:      mob,
	}
	s.users = make([]*agent.User, len(sc.UserLocations))
	for i, loc := range sc.UserLocations {
		u := s.newUser(loc, jitterRNG)
		if err := u.Validate(); err != nil {
			return nil, err
		}
		s.users[i] = u
	}
	if cfg.RoundParallelism > 1 {
		s.pool = selection.NewSolverPool(func() selection.Algorithm {
			a, err := cfg.buildAlgorithm()
			if err != nil {
				// Unreachable: the same configuration built s.alg above.
				panic(err)
			}
			return a
		})
	}
	return s, nil
}

// newUser creates a user with the configured parameters, drawing the
// jittered time budget from rng.
func (s *Simulation) newUser(loc geo.Point, rng *stats.RNG) *agent.User {
	s.nextUser++
	u := agent.New(s.nextUser, loc)
	u.Speed = s.cfg.UserSpeed
	u.TimeBudget = s.cfg.UserTimeBudget
	if j := s.cfg.TimeBudgetJitter; j > 0 {
		u.TimeBudget = s.cfg.UserTimeBudget * rng.Uniform(1-j, 1+j)
	}
	u.CostPerMeter = s.cfg.CostPerMeter
	return u
}

// Board exposes the task board (read-only use expected).
func (s *Simulation) Board() *task.Board { return s.board }

// Users exposes the user population (read-only use expected).
func (s *Simulation) Users() []*agent.User { return s.users }

// Mechanism exposes the incentive mechanism under test.
func (s *Simulation) Mechanism() incentive.Mechanism { return s.mech }

// Scenario exposes the generated scenario.
func (s *Simulation) Scenario() workload.Scenario { return s.scenario }

// rounds resolves the configured horizon.
func (s *Simulation) rounds() int {
	if s.cfg.Rounds > 0 {
		return s.cfg.Rounds
	}
	return s.board.MaxDeadline()
}

// Run executes the simulation. obs may be nil. Run may be called once per
// Simulation; it returns an error on reuse.
func (s *Simulation) Run(obs Observer) (metrics.TrialResult, error) {
	if s.ran {
		return metrics.TrialResult{}, fmt.Errorf("sim: Run called twice")
	}
	s.ran = true
	if obs == nil {
		obs = BaseObserver{}
	}

	result := metrics.TrialResult{
		Mechanism: s.mech.Name(),
		Algorithm: s.alg.Name(),
		Users:     len(s.users),
		Tasks:     s.board.Len(),
	}
	horizon := s.rounds()
	for k := 1; k <= horizon; k++ {
		rs, err := s.runRound(k, obs)
		if err != nil {
			return metrics.TrialResult{}, fmt.Errorf("sim: round %d: %w", k, err)
		}
		result.Rounds = append(result.Rounds, rs)
		result.RoundsRun = k
		result.SpeculativeSolves += rs.SpeculativeSolves
		result.ConflictReplays += rs.ConflictReplays
	}

	result.Coverage = s.board.Coverage()
	result.OverallCompleteness = s.board.OverallCompleteness()
	result.StrictCompleteness = s.board.StrictCompleteness()
	counts := s.board.MeasurementCounts()
	result.AvgMeasurements = stats.Mean(counts)
	result.VarianceMeasurements = stats.Variance(counts)
	result.TotalMeasurements = s.board.TotalReceived()
	result.TotalRewardPaid = s.board.TotalRewardPaid()
	result.AvgRewardPerMeasurement = s.board.AverageRewardPerMeasurement()
	result.UserProfits = append([]float64(nil), s.departedProfits...)
	for _, u := range s.users {
		result.UserProfits = append(result.UserProfits, u.Profit())
	}
	result.AvgUserProfit = stats.Mean(result.UserProfits)
	result.TaskGini = stats.Gini(counts)
	result.ProfitGini = stats.Gini(result.UserProfits)
	return result, nil
}

// runRound executes one sensing round: reward update, publication,
// distributed selection, upload, and bookkeeping.
func (s *Simulation) runRound(k int, obs Observer) (metrics.RoundStats, error) {
	rs := metrics.RoundStats{Round: k}

	open := s.board.OpenAt(k)
	rs.OpenTasks = len(open)
	var rewards map[task.ID]float64
	if len(open) > 0 {
		views, err := s.taskViews(open)
		if err != nil {
			return rs, err
		}
		rewards, err = s.mech.Rewards(k, views)
		if err != nil {
			return rs, err
		}
		// A mechanism may legally return no rewards for open tasks (for
		// example when its budget is exhausted); the mean must then be zero,
		// not 0/0 = NaN, which would poison every aggregate built on it.
		// Sum in the board's task order, not map order: float addition is
		// not associative, so a map-ordered sum would make
		// MeanPublishedReward differ between runs of the same seed.
		if len(rewards) > 0 {
			total := 0.0
			for _, st := range open {
				if r, ok := rewards[st.ID]; ok {
					total += r
				}
			}
			rs.MeanPublishedReward = total / float64(len(rewards))
		}
		// Validate the round's shared selection inputs once, here, instead
		// of once per user selection call: reward sanity below, task
		// locations inside the round-context build (or the explicit loop on
		// the uncached path). problemFor then marks its problems
		// CandidatesValid. Scanning in board order keeps the reported task
		// deterministic when several rewards are NaN.
		for _, st := range open {
			if r, ok := rewards[st.ID]; ok && math.IsNaN(r) {
				return rs, fmt.Errorf("mechanism %s: NaN reward for task %d", s.mech.Name(), st.ID)
			}
		}
		if s.cfg.DisableRoundContext {
			for _, st := range open {
				if !st.Location.IsFinite() {
					return rs, fmt.Errorf("task %d: non-finite location %v", st.ID, st.Location)
				}
			}
		} else {
			// The shared per-round solver context: the open tasks' pairwise
			// distance table, computed once and reused by every user's
			// selection call this round (task locations are static within a
			// round). Storage is recycled from the previous round.
			s.taskLocs = s.taskLocs[:0]
			for _, st := range open {
				s.taskLocs = append(s.taskLocs, st.Location)
			}
			if s.roundCtx == nil {
				s.roundCtx = &selection.RoundContext{}
			}
			if err := s.roundCtx.Reset(s.taskLocs); err != nil {
				return rs, err
			}
		}
	}
	obs.RoundStart(k, rewards)

	// idle tracks each user's leftover time this round, which feeds the
	// between-round mobility model.
	if cap(s.idleBuf) < len(s.users) {
		s.idleBuf = make([]float64, len(s.users))
	}
	idle := s.idleBuf[:len(s.users)]
	for i, u := range s.users {
		idle[i] = u.TimeBudget
	}
	if len(open) > 0 {
		// Users act in a random order each round; each sees the round's
		// published rewards but only tasks still accepting measurements at
		// its turn (the WST mode's redundant-completion drawback is thereby
		// bounded by phi per task). The permutation buffer is recycled
		// across rounds; PermInto consumes exactly the draws Perm made, so
		// seeded results are untouched.
		s.permBuf = s.orderRNG.PermInto(s.permBuf, len(s.users))
		if err := s.runUsers(k, s.permBuf, open, rewards, obs, &rs, idle); err != nil {
			return rs, err
		}
	}

	for i, u := range s.users {
		next := s.mob.Step(s.mobRNG, u.ID, u.Location, idle[i], u.Speed)
		u.MoveTo(next)
	}

	if s.cfg.ResetLocations {
		area := s.scenario.Area
		for _, u := range s.users {
			u.MoveTo(geo.Pt(
				s.resetRNG.Uniform(area.Min.X, area.Max.X),
				s.resetRNG.Uniform(area.Min.Y, area.Max.Y),
			))
		}
	}
	if s.cfg.ChurnRate > 0 {
		area := s.scenario.Area
		for i, u := range s.users {
			if s.churnRNG.Float64() >= s.cfg.ChurnRate {
				continue
			}
			s.departedProfits = append(s.departedProfits, u.Profit())
			s.users[i] = s.newUser(geo.Pt(
				s.churnRNG.Uniform(area.Min.X, area.Max.X),
				s.churnRNG.Uniform(area.Min.Y, area.Max.Y),
			), s.churnRNG)
		}
	}

	rs.NewMeasurements = s.board.TotalReceivedAt(k)
	rs.TotalMeasurements = s.board.TotalReceived()
	rs.Coverage = s.board.CoverageBy(k)
	rs.Completeness = s.board.OverallCompletenessBy(k)
	rs.RewardPaid = s.board.TotalRewardPaid()
	obs.RoundEnd(k, rs)
	return rs, nil
}

// runUsers executes the distributed-selection half of one round: each user
// in perm order solves its selection problem and commits the resulting
// plan (records, profit, movement, idle-time bookkeeping).
//
// With RoundParallelism <= 1 this is the historical sequential loop. Above
// that it becomes a speculate/commit protocol: every user's problem is
// solved concurrently against the round-start snapshot (phase A, no board
// mutation), then plans are committed one by one in the same perm order
// (phase B). The only way an earlier commit can change a later user's
// problem is by filling a task to its phi cap — closing it — so a user is
// re-solved inline at its commit position exactly when a task filled
// earlier this round was still in its candidate set; otherwise its
// speculative problem equals the problem the sequential loop would have
// built, and the speculative plan (and even the speculative solver error)
// is byte-identical to the sequential outcome. Note the trigger is
// candidate overlap, not Plan.Touches overlap: a solver may legitimately
// depend on candidates it does not select (Auto dispatches DP vs greedy on
// the reachable-candidate count), so an untouched-but-selectable closed
// task still forces a replay.
func (s *Simulation) runUsers(k int, perm []int, open []*task.State, rewards map[task.ID]float64, obs Observer, rs *metrics.RoundStats, idle []float64) error {
	parallel := s.pool != nil && len(perm) > 1
	if parallel {
		s.speculate(k, perm, open, rewards)
		rs.SpeculativeSolves = len(perm)
		s.closedBuf = s.closedBuf[:0]
	}
	for pos, ui := range perm {
		u := s.users[ui]
		var problem selection.Problem
		var plan selection.Plan
		var err error
		if parallel && !s.invalidated(u) {
			sp := &s.spec[pos]
			problem, plan, err = sp.problem, sp.plan, sp.err
		} else {
			// Sequential mode — or an earlier commit closed a task this
			// user could still have selected: solve against the current
			// board state, exactly as the sequential loop would at this
			// position.
			problem = s.problemFor(u, k, open, rewards)
			plan, err = s.alg.Select(problem)
			if parallel {
				rs.ConflictReplays++
			}
		}
		if err != nil {
			return fmt.Errorf("user %d: %w", u.ID, err)
		}
		obs.UserPlanned(k, u.ID, problem, plan)
		if plan.Empty() {
			continue
		}
		for _, id := range plan.Order {
			st := s.board.Get(id)
			if err := st.Record(u.ID, k, rewards[id]); err != nil {
				return fmt.Errorf("user %d task %d: %w", u.ID, id, err)
			}
			if parallel && st.Complete() {
				s.closedBuf = append(s.closedBuf, id)
			}
			u.MarkDone(id)
		}
		u.AddProfit(plan.Profit)
		rs.RoundProfit += plan.Profit
		rs.ActiveUsers++
		if end, ok := plan.Path.End(); ok {
			u.MoveTo(end)
		}
		spent := u.TravelTime(plan.Distance) + s.cfg.SensingTime*float64(plan.Len())
		idle[ui] -= spent
		if idle[ui] < 0 {
			idle[ui] = 0
		}
	}
	return nil
}

// speculate solves every user's round-k selection problem concurrently
// against the round-start snapshot, filling s.spec by perm position. The
// board, the open slice, the reward map, and the shared round context are
// all read-only during this phase, so the only mutable state a worker
// touches is its own pooled solver and its positions' speculation slots.
func (s *Simulation) speculate(k int, perm []int, open []*task.State, rewards map[task.ID]float64) {
	n := len(perm)
	if len(s.spec) < n {
		s.spec = append(s.spec, make([]speculation, n-len(s.spec))...)
	}
	spec := s.spec[:n]
	workers := s.cfg.RoundParallelism
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			alg := s.pool.Get()
			defer s.pool.Put(alg)
			for {
				pos := int(next.Add(1))
				if pos >= n {
					return
				}
				sp := &spec[pos]
				u := s.users[perm[pos]]
				sp.problem, sp.cand = s.problemForInto(u, k, open, rewards, sp.cand)
				sp.plan, sp.err = alg.Select(sp.problem)
			}
		}()
	}
	wg.Wait()
}

// invalidated reports whether any task filled by an earlier commit of this
// round was still selectable by u at the round-start snapshot — in which
// case u's speculative problem is stale and must be re-solved. The user's
// own contribution state cannot have changed (each user commits once per
// round), so checking it now is equivalent to checking it at snapshot
// time. Tasks a user already contributed to were never its candidates and
// never invalidate it, which keeps replays rare outside pathological
// contention.
func (s *Simulation) invalidated(u *agent.User) bool {
	for _, id := range s.closedBuf {
		if !s.board.Get(id).Contributed(u.ID) && !u.HasDone(id) {
			return true
		}
	}
	return false
}

// taskViews builds the mechanism's per-task observations, counting each
// task's neighboring users with a grid index over current user locations.
// The returned slice is simulation-owned scratch, valid until the next
// round (mechanisms consume it synchronously inside Rewards).
func (s *Simulation) taskViews(open []*task.State) ([]incentive.TaskView, error) {
	s.userLocs = agent.LocationsInto(s.userLocs, s.users)
	grid, err := geo.NewGridIndex(s.scenario.Area, s.cfg.NeighborRadius, s.userLocs)
	if err != nil {
		return nil, err
	}
	if cap(s.viewBuf) < len(open) {
		s.viewBuf = make([]incentive.TaskView, len(open))
	}
	views := s.viewBuf[:len(open)]
	for i, st := range open {
		views[i] = incentive.TaskView{
			ID:        st.ID,
			Location:  st.Location,
			Deadline:  st.Deadline,
			Required:  st.Required,
			Received:  st.Received(),
			Neighbors: grid.CountWithin(st.Location, s.cfg.NeighborRadius),
		}
	}
	return views, nil
}

// problemFor assembles one user's selection problem for round k: every
// published task the user has not already contributed to, priced at this
// round's rewards, and still accepting measurements. Candidates follow the
// board's task order so the simulation is deterministic under a seed.
//
// The candidate slice is simulation-owned scratch shared by all users of a
// round, and the problem links the round's shared solver context (each
// candidate's CtxIndex is its slot in the open task list the context was
// built over). The shared inputs were validated in runRound, so the
// problem is marked CandidatesValid and solvers skip the per-candidate
// re-validation.
func (s *Simulation) problemFor(u *agent.User, k int, open []*task.State, rewards map[task.ID]float64) selection.Problem {
	p, buf := s.problemForInto(u, k, open, rewards, s.candBuf)
	s.candBuf = buf
	return p
}

// problemForInto is problemFor over a caller-owned candidate buffer,
// returning the (possibly re-grown) buffer. The speculative engine's
// workers use it with per-position buffers so every user's problem of a
// round can be alive at once; the sequential path passes the shared
// s.candBuf scratch.
func (s *Simulation) problemForInto(u *agent.User, k int, open []*task.State, rewards map[task.ID]float64, buf []selection.Candidate) (selection.Problem, []selection.Candidate) {
	p := selection.Problem{
		Start:           u.Location,
		MaxDistance:     u.MaxTravelDistance(),
		CostPerMeter:    u.CostPerMeter,
		PerTaskDistance: s.cfg.SensingTime * u.Speed,
		CandidatesValid: true,
	}
	if !s.cfg.DisableRoundContext {
		p.Ctx = s.roundCtx
	}
	buf = buf[:0]
	for i, st := range open {
		if !st.OpenAt(k) || st.Contributed(u.ID) || u.HasDone(st.ID) {
			continue
		}
		buf = append(buf, selection.Candidate{
			ID:       st.ID,
			Location: st.Location,
			Reward:   rewards[st.ID],
			CtxIndex: i,
		})
	}
	p.Candidates = buf
	return p, buf
}

// Run is a convenience that builds and runs a simulation in one call.
func Run(cfg Config, seed int64) (metrics.TrialResult, error) {
	s, err := New(cfg, seed)
	if err != nil {
		return metrics.TrialResult{}, err
	}
	return s.Run(nil)
}

package sim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"paydemand/internal/agent"
	"paydemand/internal/engine"
	"paydemand/internal/geo"
	"paydemand/internal/incentive"
	"paydemand/internal/metrics"
	"paydemand/internal/mobility"
	"paydemand/internal/selection"
	"paydemand/internal/shard"
	"paydemand/internal/stats"
	"paydemand/internal/task"
	"paydemand/internal/workload"
)

// Observer receives the simulation's per-round events. All methods are
// optional no-ops in the embedded BaseObserver; the experiment harness uses
// observers to capture data the final metrics do not retain (for example
// per-user plans at a specific round for Fig. 5).
type Observer interface {
	// RoundStart fires after reward update and task publication. The
	// rewards map is engine-owned scratch recycled by the next round's
	// reprice: observers that keep it past the call must copy it.
	RoundStart(round int, rewards map[task.ID]float64)
	// UserPlanned fires after each user's task selection, whether or not
	// the plan is empty. The problem (including its Candidates slice and
	// shared round context) is backed by simulation-owned buffers that are
	// reused for the next user: it is valid only for the duration of the
	// call, so observers that retain it must copy what they keep. The plan
	// is the observer's to keep.
	UserPlanned(round int, userID int, problem selection.Problem, plan selection.Plan)
	// RoundEnd fires after all users have acted, with the round's stats.
	RoundEnd(round int, stats metrics.RoundStats)
}

// BaseObserver is a no-op Observer for embedding.
type BaseObserver struct{}

var _ Observer = BaseObserver{}

// RoundStart implements Observer.
func (BaseObserver) RoundStart(int, map[task.ID]float64) {}

// UserPlanned implements Observer.
func (BaseObserver) UserPlanned(int, int, selection.Problem, selection.Plan) {}

// RoundEnd implements Observer.
func (BaseObserver) RoundEnd(int, metrics.RoundStats) {}

// Simulation is one configured run over one generated scenario. Create
// with New (fresh scenario) or NewFromScenario (pre-built scenario), then
// call Run exactly once.
type Simulation struct {
	cfg      Config
	scenario workload.Scenario
	board    *task.Board
	eng      engine.RoundEngine
	users    []*agent.User
	mech     incentive.Mechanism
	alg      selection.Algorithm
	orderRNG *stats.RNG
	resetRNG *stats.RNG
	churnRNG *stats.RNG
	mobRNG   *stats.RNG
	mob      mobility.Model
	nextUser int
	// departedProfits holds the profits of users that churned out, so the
	// final profit accounting covers everyone who participated.
	departedProfits []float64
	ran             bool

	// Per-round scratch, reused across rounds and users so the steady-state
	// round loop runs without allocations: the per-user candidate buffer
	// (see Observer.UserPlanned for the resulting aliasing rules), the
	// idle-time tracker, and the user-location slice fed to the engine's
	// reprice. The round-level scratch — open snapshot, neighbor grid, task
	// views, shared solver context — lives inside the engine.
	candBuf  []selection.Candidate
	idleBuf  []float64
	userLocs []geo.Point
	// permBuf is the grow-only per-round user-order permutation buffer
	// (filled by PermInto with the exact draws Perm used to make).
	permBuf []int

	// Speculative parallel round state (RoundParallelism > 1): the solver
	// pool giving each worker goroutine its own scratch-owning Algorithm
	// and the per-position speculation slots (each with its own grow-only
	// candidate buffer so a speculative problem stays valid through its
	// commit). The conflict set that triggers inline replays — the IDs of
	// tasks filled by commits of the current round — is the engine's
	// Closed set.
	pool *selection.SolverPool
	spec []speculation
}

// speculation is one user's concurrently solved selection for the current
// round: the problem built against the round-start snapshot (over the
// slot's own candidate buffer), the resulting plan, and any solver error
// (surfaced at the user's commit position, exactly where the sequential
// loop would have hit it).
type speculation struct {
	problem selection.Problem
	cand    []selection.Candidate
	plan    selection.Plan
	err     error
}

// New generates a scenario from cfg.Workload with the given seed and
// prepares the simulation. The same (cfg, seed) pair always produces the
// same result.
func New(cfg Config, seed int64) (*Simulation, error) {
	root := stats.NewRNG(seed)
	scenarioRNG := root.Split()
	sc, err := workload.Generate(scenarioRNG, cfg.Workload)
	if err != nil {
		return nil, err
	}
	return NewFromScenario(cfg, sc, root.Int63())
}

// NewFromScenario prepares a simulation over a caller-supplied scenario.
// seed drives the remaining randomness (fixed-mechanism level draws, user
// ordering, optional location resets).
func NewFromScenario(cfg Config, sc workload.Scenario, seed int64) (*Simulation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	root := stats.NewRNG(seed)
	mechRNG := root.Split()
	orderRNG := root.Split()
	resetRNG := root.Split()
	churnRNG := root.Split()
	jitterRNG := root.Split()
	mobRNG := root.Split()

	board, err := task.NewBoard(sc.Tasks)
	if err != nil {
		return nil, err
	}
	mech, err := cfg.buildMechanism(board.TotalRequired())
	if err != nil {
		return nil, err
	}
	alg, err := cfg.buildAlgorithm()
	if err != nil {
		return nil, err
	}
	mob, err := cfg.buildMobility(sc.Area)
	if err != nil {
		return nil, err
	}
	// The forecast backing the mobility capability shares the simulation's
	// mobility model, so forecast-driven pricing sees the same movement
	// assumptions that actually move the users.
	fc, err := mobility.NewForecast(mob, cfg.MobilityUncertainty, sc.Area, cfg.NeighborRadius, len(sc.UserLocations))
	if err != nil {
		return nil, err
	}
	// Historical simulator behavior either way: unpriced open tasks stay
	// in candidate sets at reward 0 (the candidate count feeds Auto's
	// algorithm dispatch, so dropping them would change results). With
	// Shards > 0 the geo-sharded engine replaces the single engine; its
	// output is byte-identical at every shard count (DESIGN.md sec. 14).
	// The capability fields are always supplied — the engine hands each
	// mechanism only what its Requires() mask declares, so unused inputs
	// cost nothing and consume no randomness. mechRNG keeps its historical
	// split position, so the fixed mechanism's level draws are unchanged.
	var eng engine.RoundEngine
	if cfg.Shards > 0 {
		eng, err = shard.New(shard.Config{
			Board:           board,
			Mechanism:       mech,
			Area:            sc.Area,
			NeighborRadius:  cfg.NeighborRadius,
			DisableContext:  cfg.DisableRoundContext,
			RequirePriced:   false,
			Shards:          cfg.Shards,
			RNG:             mechRNG,
			Budget:          cfg.Budget,
			BidCostPerMeter: cfg.CostPerMeter,
			Forecast:        fc,
		})
	} else {
		eng, err = engine.New(engine.Config{
			Board:           board,
			Mechanism:       mech,
			Area:            sc.Area,
			NeighborRadius:  cfg.NeighborRadius,
			DisableContext:  cfg.DisableRoundContext,
			RequirePriced:   false,
			RNG:             mechRNG,
			Budget:          cfg.Budget,
			BidCostPerMeter: cfg.CostPerMeter,
			Forecast:        fc,
		})
	}
	if err != nil {
		return nil, err
	}
	s := &Simulation{
		cfg:      cfg,
		scenario: sc,
		board:    board,
		eng:      eng,
		mech:     mech,
		alg:      alg,
		orderRNG: orderRNG,
		resetRNG: resetRNG,
		churnRNG: churnRNG,
		mobRNG:   mobRNG,
		mob:      mob,
	}
	s.users = make([]*agent.User, len(sc.UserLocations))
	for i, loc := range sc.UserLocations {
		u := s.newUser(loc, jitterRNG)
		if err := u.Validate(); err != nil {
			return nil, err
		}
		s.users[i] = u
	}
	if cfg.RoundParallelism > 1 {
		s.pool = selection.NewSolverPool(func() selection.Algorithm {
			a, err := cfg.buildAlgorithm()
			if err != nil {
				// Unreachable: the same configuration built s.alg above.
				panic(err)
			}
			return a
		})
	}
	return s, nil
}

// newUser creates a user with the configured parameters, drawing the
// jittered time budget from rng.
func (s *Simulation) newUser(loc geo.Point, rng *stats.RNG) *agent.User {
	s.nextUser++
	u := agent.New(s.nextUser, loc)
	u.Speed = s.cfg.UserSpeed
	u.TimeBudget = s.cfg.UserTimeBudget
	if j := s.cfg.TimeBudgetJitter; j > 0 {
		u.TimeBudget = s.cfg.UserTimeBudget * rng.Uniform(1-j, 1+j)
	}
	u.CostPerMeter = s.cfg.CostPerMeter
	return u
}

// Board exposes the task board (read-only use expected).
func (s *Simulation) Board() *task.Board { return s.board }

// Users exposes the user population (read-only use expected).
func (s *Simulation) Users() []*agent.User { return s.users }

// Mechanism exposes the incentive mechanism under test.
func (s *Simulation) Mechanism() incentive.Mechanism { return s.mech }

// Scenario exposes the generated scenario.
func (s *Simulation) Scenario() workload.Scenario { return s.scenario }

// rounds resolves the configured horizon.
func (s *Simulation) rounds() int {
	if s.cfg.Rounds > 0 {
		return s.cfg.Rounds
	}
	return s.board.MaxDeadline()
}

// Run executes the simulation. obs may be nil. Run may be called once per
// Simulation; it returns an error on reuse.
func (s *Simulation) Run(obs Observer) (metrics.TrialResult, error) {
	if s.ran {
		return metrics.TrialResult{}, fmt.Errorf("sim: Run called twice")
	}
	s.ran = true
	if obs == nil {
		obs = BaseObserver{}
	}
	// The mechanism may have been substituted after construction (tests
	// inject stubs); make sure the engine prices with the current one.
	s.eng.SetMechanism(s.mech)

	result := metrics.TrialResult{
		Mechanism: s.mech.Name(),
		Algorithm: s.alg.Name(),
		Users:     len(s.users),
		Tasks:     s.board.Len(),
	}
	horizon := s.rounds()
	for k := 1; k <= horizon; k++ {
		rs, err := s.runRound(k, obs)
		if err != nil {
			return metrics.TrialResult{}, fmt.Errorf("sim: round %d: %w", k, err)
		}
		result.Rounds = append(result.Rounds, rs)
		result.RoundsRun = k
		result.SpeculativeSolves += rs.SpeculativeSolves
		result.ConflictReplays += rs.ConflictReplays
	}

	s.eng.FinishTrial(&result)
	result.UserProfits = append([]float64(nil), s.departedProfits...)
	for _, u := range s.users {
		result.UserProfits = append(result.UserProfits, u.Profit())
	}
	result.AvgUserProfit = stats.Mean(result.UserProfits)
	result.ProfitGini = stats.Gini(result.UserProfits)
	return result, nil
}

// runRound executes one sensing round: reward update, publication,
// distributed selection, upload, and bookkeeping. The engine runs the
// shared platform pipeline (snapshot, reprice, commit, stats); this
// driver owns what is simulation-specific — user agents, acting order,
// speculation, mobility, churn.
func (s *Simulation) runRound(k int, obs Observer) (metrics.RoundStats, error) {
	rs := metrics.RoundStats{Round: k}

	open := s.eng.BeginRound(k)
	rs.OpenTasks = len(open)
	if len(open) > 0 {
		s.userLocs = agent.LocationsInto(s.userLocs, s.users)
		if err := s.eng.Reprice(s.userLocs); err != nil {
			return rs, err
		}
		rs.MeanPublishedReward = s.eng.MeanPublishedReward()
	}
	rewards := s.eng.Rewards()
	obs.RoundStart(k, rewards)

	// idle tracks each user's leftover time this round, which feeds the
	// between-round mobility model.
	if cap(s.idleBuf) < len(s.users) {
		s.idleBuf = make([]float64, len(s.users))
	}
	idle := s.idleBuf[:len(s.users)]
	for i, u := range s.users {
		idle[i] = u.TimeBudget
	}
	if len(open) > 0 {
		// Users act in a random order each round; each sees the round's
		// published rewards but only tasks still accepting measurements at
		// its turn (the WST mode's redundant-completion drawback is thereby
		// bounded by phi per task). The permutation buffer is recycled
		// across rounds; PermInto consumes exactly the draws Perm made, so
		// seeded results are untouched.
		s.permBuf = s.orderRNG.PermInto(s.permBuf, len(s.users))
		if err := s.runUsers(k, s.permBuf, obs, &rs, idle); err != nil {
			return rs, err
		}
	}

	for i, u := range s.users {
		next := s.mob.Step(s.mobRNG, u.ID, u.Location, idle[i], u.Speed)
		u.MoveTo(next)
	}

	if s.cfg.ResetLocations {
		area := s.scenario.Area
		for _, u := range s.users {
			u.MoveTo(geo.Pt(
				s.resetRNG.Uniform(area.Min.X, area.Max.X),
				s.resetRNG.Uniform(area.Min.Y, area.Max.Y),
			))
		}
	}
	if s.cfg.ChurnRate > 0 {
		area := s.scenario.Area
		for i, u := range s.users {
			if s.churnRNG.Float64() >= s.cfg.ChurnRate {
				continue
			}
			s.departedProfits = append(s.departedProfits, u.Profit())
			s.users[i] = s.newUser(geo.Pt(
				s.churnRNG.Uniform(area.Min.X, area.Max.X),
				s.churnRNG.Uniform(area.Min.Y, area.Max.Y),
			), s.churnRNG)
		}
	}

	s.eng.FinishRoundStats(&rs)
	obs.RoundEnd(k, rs)
	return rs, nil
}

// runUsers executes the distributed-selection half of one round: each user
// in perm order solves its selection problem and commits the resulting
// plan (records, profit, movement, idle-time bookkeeping).
//
// With RoundParallelism <= 1 this is the historical sequential loop. Above
// that it becomes a speculate/commit protocol: every user's problem is
// solved concurrently against the round-start snapshot (phase A, no board
// mutation), then plans are committed one by one in the same perm order
// (phase B). The only way an earlier commit can change a later user's
// problem is by filling a task to its phi cap — closing it — so a user is
// re-solved inline at its commit position exactly when a task filled
// earlier this round was still in its candidate set; otherwise its
// speculative problem equals the problem the sequential loop would have
// built, and the speculative plan (and even the speculative solver error)
// is byte-identical to the sequential outcome. Note the trigger is
// candidate overlap, not Plan.Touches overlap: a solver may legitimately
// depend on candidates it does not select (Auto dispatches DP vs greedy on
// the reachable-candidate count), so an untouched-but-selectable closed
// task still forces a replay.
func (s *Simulation) runUsers(k int, perm []int, obs Observer, rs *metrics.RoundStats, idle []float64) error {
	parallel := s.pool != nil && len(perm) > 1
	if parallel {
		s.speculate(perm)
		rs.SpeculativeSolves = len(perm)
	}
	for pos, ui := range perm {
		u := s.users[ui]
		var problem selection.Problem
		var plan selection.Plan
		var err error
		if parallel && !s.invalidated(u) {
			sp := &s.spec[pos]
			problem, plan, err = sp.problem, sp.plan, sp.err
		} else {
			// Sequential mode — or an earlier commit closed a task this
			// user could still have selected: solve against the current
			// board state, exactly as the sequential loop would at this
			// position.
			problem = s.problemFor(u)
			plan, err = s.alg.Select(problem)
			if parallel {
				rs.ConflictReplays++
			}
		}
		if err != nil {
			return fmt.Errorf("user %d: %w", u.ID, err)
		}
		obs.UserPlanned(k, u.ID, problem, plan)
		if plan.Empty() {
			continue
		}
		// CommitPlan gives the sharded engine its two-phase cross-shard
		// commit (all owning regions locked for the whole route); on the
		// single engine it is the same per-task loop as before. Either
		// way n tasks committed means ids[:n] succeeded and, on error,
		// ids[n] is the task that failed.
		n, err := s.eng.CommitPlan(u.ID, plan.Order)
		for _, id := range plan.Order[:n] {
			u.MarkDone(id)
		}
		if err != nil {
			return fmt.Errorf("user %d task %d: %w", u.ID, plan.Order[n], err)
		}
		u.AddProfit(plan.Profit)
		rs.RoundProfit += plan.Profit
		rs.ActiveUsers++
		if end, ok := plan.Path.End(); ok {
			u.MoveTo(end)
		}
		spent := u.TravelTime(plan.Distance) + s.cfg.SensingTime*float64(plan.Len())
		idle[ui] -= spent
		if idle[ui] < 0 {
			idle[ui] = 0
		}
	}
	return nil
}

// speculate solves every user's current-round selection problem
// concurrently against the round-start snapshot, filling s.spec by perm
// position. The engine is only read during this phase (ProblemInto is a
// read-only accessor), so the only mutable state a worker touches is its
// own pooled solver and its positions' speculation slots.
func (s *Simulation) speculate(perm []int) {
	n := len(perm)
	if len(s.spec) < n {
		s.spec = append(s.spec, make([]speculation, n-len(s.spec))...)
	}
	spec := s.spec[:n]
	workers := s.cfg.RoundParallelism
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			alg := s.pool.Get()
			defer s.pool.Put(alg)
			for {
				pos := int(next.Add(1))
				if pos >= n {
					return
				}
				sp := &spec[pos]
				u := s.users[perm[pos]]
				sp.problem, sp.cand = s.problemForInto(u, sp.cand)
				sp.plan, sp.err = alg.Select(sp.problem)
			}
		}()
	}
	wg.Wait()
}

// invalidated reports whether any task filled by an earlier commit of this
// round was still selectable by u at the round-start snapshot — in which
// case u's speculative problem is stale and must be re-solved. The user's
// own contribution state cannot have changed (each user commits once per
// round), so checking it now is equivalent to checking it at snapshot
// time. Tasks a user already contributed to were never its candidates and
// never invalidate it, which keeps replays rare outside pathological
// contention.
func (s *Simulation) invalidated(u *agent.User) bool {
	for _, id := range s.eng.Closed() {
		if !s.board.Get(id).Contributed(u.ID) && !u.HasDone(id) {
			return true
		}
	}
	return false
}

// problemFor assembles one user's selection problem for the current round
// over the shared s.candBuf scratch (see Observer.UserPlanned for the
// resulting aliasing rules). The engine supplies the round-dependent half
// — candidates in board order, this round's prices, the shared solver
// context — so the simulation is deterministic under a seed.
func (s *Simulation) problemFor(u *agent.User) selection.Problem {
	p, buf := s.problemForInto(u, s.candBuf)
	s.candBuf = buf
	return p
}

// problemForInto is problemFor over a caller-owned candidate buffer,
// returning the (possibly re-grown) buffer. The speculative workers use
// it with per-position buffers so every user's problem of a round can be
// alive at once; the sequential path passes the shared s.candBuf scratch.
func (s *Simulation) problemForInto(u *agent.User, buf []selection.Candidate) (selection.Problem, []selection.Candidate) {
	return s.eng.ProblemInto(engine.Spec{
		Start:           u.Location,
		MaxDistance:     u.MaxTravelDistance(),
		CostPerMeter:    u.CostPerMeter,
		PerTaskDistance: s.cfg.SensingTime * u.Speed,
	}, u, buf)
}

// Run is a convenience that builds and runs a simulation in one call.
func Run(cfg Config, seed int64) (metrics.TrialResult, error) {
	s, err := New(cfg, seed)
	if err != nil {
		return metrics.TrialResult{}, err
	}
	return s.Run(nil)
}

// Package sim implements the round-based crowdsensing simulation of the
// paper's Fig. 1: each sensing round the platform updates rewards and
// publishes the open tasks; mobile users select tasks in a distributed way
// (WST mode), perform them, and upload measurements; the platform then
// recomputes task demands for the next round.
package sim

import (
	"fmt"

	"paydemand/internal/demand"
	"paydemand/internal/geo"
	"paydemand/internal/incentive"
	"paydemand/internal/mobility"
	"paydemand/internal/selection"
	"paydemand/internal/workload"
)

// MechanismKind selects the incentive mechanism under test.
type MechanismKind int

// The mechanisms compared in the paper plus the ablation presets.
const (
	// MechanismOnDemand is the paper's demand-based dynamic mechanism with
	// the Table I AHP weights.
	MechanismOnDemand MechanismKind = iota + 1
	// MechanismFixed draws a random demand level per task once and never
	// changes the reward.
	MechanismFixed
	// MechanismSteered is Kawajiri et al.'s quality-driven decay (Eq. 13),
	// scaled to the same reward budget as the other mechanisms so the
	// comparison is fair (the paper's Fig. 9(b) plots steered on this
	// scale; see DESIGN.md "Substitutions").
	MechanismSteered
	// MechanismSteeredRaw is Eq. 13 with the unscaled paper constants
	// (rewards in [5, 25]).
	MechanismSteeredRaw
	// MechanismEqualWeights is on-demand without AHP (uniform weights).
	MechanismEqualWeights
	// MechanismDeadlineOnly / MechanismProgressOnly / MechanismNeighborsOnly
	// are single-factor ablations of the demand indicator.
	MechanismDeadlineOnly
	MechanismProgressOnly
	MechanismNeighborsOnly
	// MechanismAuction is the budget-limited truthful reverse auction:
	// workers bid travel-derived costs, the cheapest budget-feasible
	// prefix wins, and every task is priced at the uniform critical
	// payment.
	MechanismAuction
	// MechanismIncentMe prices tasks against forecast — not observed —
	// user supply under the configured mobility model and the
	// MobilityUncertainty knob.
	MechanismIncentMe
)

// mechanismKinds lists every valid kind in declaration order, for
// validation messages and CLI parsing.
var mechanismKinds = []MechanismKind{
	MechanismOnDemand, MechanismFixed, MechanismSteered, MechanismSteeredRaw,
	MechanismEqualWeights, MechanismDeadlineOnly, MechanismProgressOnly,
	MechanismNeighborsOnly, MechanismAuction, MechanismIncentMe,
}

// MechanismKinds returns every valid mechanism kind in declaration order.
func MechanismKinds() []MechanismKind {
	return append([]MechanismKind(nil), mechanismKinds...)
}

// String implements fmt.Stringer.
func (k MechanismKind) String() string {
	switch k {
	case MechanismOnDemand:
		return "on-demand"
	case MechanismFixed:
		return "fixed"
	case MechanismSteered:
		return "steered"
	case MechanismSteeredRaw:
		return "steered-raw"
	case MechanismEqualWeights:
		return "equal-weights"
	case MechanismDeadlineOnly:
		return "deadline-only"
	case MechanismProgressOnly:
		return "progress-only"
	case MechanismNeighborsOnly:
		return "neighbors-only"
	case MechanismAuction:
		return "auction"
	case MechanismIncentMe:
		return "incentme"
	default:
		return fmt.Sprintf("MechanismKind(%d)", int(k))
	}
}

// AlgorithmKind selects the distributed task selection algorithm.
type AlgorithmKind int

// The selection algorithms of Section V.
const (
	// AlgorithmDP is the optimal dynamic program.
	AlgorithmDP AlgorithmKind = iota + 1
	// AlgorithmGreedy is the O(m^2) heuristic.
	AlgorithmGreedy
	// AlgorithmAuto dispatches per instance: DP on small filtered
	// instances, beam search in the mid band, greedy + 2-opt beyond.
	AlgorithmAuto
	// AlgorithmTwoOpt is greedy followed by 2-opt order improvement.
	AlgorithmTwoOpt
	// AlgorithmBeam is the deterministic beam search with 2-opt / or-opt
	// polish (see selection.Beam).
	AlgorithmBeam
)

// String implements fmt.Stringer.
func (k AlgorithmKind) String() string {
	switch k {
	case AlgorithmDP:
		return "dp"
	case AlgorithmGreedy:
		return "greedy"
	case AlgorithmAuto:
		return "auto"
	case AlgorithmTwoOpt:
		return "greedy+2opt"
	case AlgorithmBeam:
		return "beam"
	default:
		return fmt.Sprintf("AlgorithmKind(%d)", int(k))
	}
}

// Paper defaults for the simulation (Section VI).
const (
	DefaultNeighborRadius = 500.0
	DefaultBudget         = 1000.0
	DefaultRewardLambda   = 0.5
	DefaultDemandLevels   = 5
	DefaultUserSpeed      = 2.0
	DefaultUserTimeBudget = 600.0
	DefaultCostPerMeter   = 0.002
)

// Config parameterizes one simulation. Zero values mean the paper's
// defaults throughout.
type Config struct {
	// Workload configures scenario generation (area, populations,
	// deadlines, placements).
	Workload workload.Config `json:"workload"`
	// Mechanism picks the incentive mechanism; zero means on-demand.
	Mechanism MechanismKind `json:"mechanism"`
	// Algorithm picks the selection algorithm; zero means auto.
	Algorithm AlgorithmKind `json:"algorithm"`
	// Rounds bounds the simulation length; zero means the largest task
	// deadline (every task is settled by then).
	Rounds int `json:"rounds"`
	// NeighborRadius is the radius R defining neighboring users of a task.
	NeighborRadius float64 `json:"neighbor_radius"`
	// UserSpeed is the walking speed in m/s.
	UserSpeed float64 `json:"user_speed"`
	// UserTimeBudget is the per-round time budget in seconds.
	UserTimeBudget float64 `json:"user_time_budget"`
	// CostPerMeter is the movement cost in $/m.
	CostPerMeter float64 `json:"cost_per_meter"`
	// Budget is the platform's total reward budget B.
	Budget float64 `json:"budget"`
	// RewardLambda is the per-level reward increment lambda of Eq. 7.
	RewardLambda float64 `json:"reward_lambda"`
	// DemandLevels is the number of demand levels N (Table III).
	DemandLevels int `json:"demand_levels"`
	// ResetLocations redraws every user's location each round (population
	// churn) instead of persisting end-of-round positions.
	ResetLocations bool `json:"reset_locations"`
	// DPMaxTasks caps the exact solver's instance size (see selection.DP);
	// zero means selection.DefaultDPMaxTasks. Values above
	// selection.DPHardMaxTasks are rejected: the DP table would overflow
	// its index arithmetic (and any realistic memory) before reaching them.
	DPMaxTasks int `json:"dp_max_tasks"`
	// BeamWidth is the beam search width (states kept per depth) for the
	// beam solver and Auto's beam band; zero means
	// selection.DefaultBeamWidth. Negative values are rejected loudly —
	// a width of zero states would silently solve nothing.
	BeamWidth int `json:"beam_width"`
	// BeamImprove is the number of 2-opt / or-opt polish rounds the beam
	// runs on its best route; zero means selection.DefaultBeamImprove.
	// Negative values are rejected loudly.
	BeamImprove int `json:"beam_improve"`
	// DisableRoundContext turns off the per-round shared solver context
	// (the task-pair distance table computed once per round and reused by
	// every user's selection call) and recomputes distances per user
	// instead. Results are bit-for-bit identical either way; the flag
	// exists for equivalence testing and debugging, not for production.
	DisableRoundContext bool `json:"disable_round_context,omitempty"`
	// SensingTime is the seconds one measurement takes on site. The paper
	// assumes it negligible (its default, 0); a positive value consumes
	// user time budget per selected task.
	SensingTime float64 `json:"sensing_time"`
	// TimeBudgetJitter spreads per-user time budgets: each user draws its
	// budget uniformly from [B(1-j), B(1+j)]. Zero (the paper's implied
	// setting) gives every user the same budget. Must be in [0, 1].
	TimeBudgetJitter float64 `json:"time_budget_jitter"`
	// ChurnRate is the per-round probability that a user leaves and is
	// replaced by a fresh user at a random location (with no contribution
	// history). Zero (the paper's setting) keeps the population fixed.
	ChurnRate float64 `json:"churn_rate"`
	// Mobility moves users between rounds with the time they did not
	// spend on tasks; zero means stationary (the paper's implicit model).
	Mobility MobilityKind `json:"mobility"`
	// MobilityUncertainty is the extra per-round neighborhood mixing the
	// mobility forecast assumes on top of the model's own diffusion, in
	// [0, 1]: 0 trusts the model, 1 collapses the forecast to the uniform
	// equilibrium after one round. Consumed by forecast-driven mechanisms
	// (MechanismIncentMe); ignored otherwise.
	MobilityUncertainty float64 `json:"mobility_uncertainty,omitempty"`
	// RoundParallelism is the number of worker goroutines that solve the
	// per-user task selection problems of one round concurrently. Zero or
	// one runs the historical sequential loop. Higher values use the
	// speculative engine: every user's problem is solved against the
	// round-start snapshot in parallel, plans are committed in the usual
	// random user order, and a user is re-solved inline only when an
	// earlier commit filled a task in its candidate set — so results are
	// byte-identical to the sequential loop at any setting (see DESIGN.md
	// section 10).
	RoundParallelism int `json:"round_parallelism,omitempty"`
	// Shards is the number of geographic regions the round engine is
	// partitioned into. Zero keeps the historical single engine; any
	// value >= 1 runs the geo-sharded engine (internal/shard), which is
	// byte-identical to the single engine at every shard count — the
	// knob trades wall-clock for nothing else (see DESIGN.md section
	// 14). Negative values are rejected.
	Shards int `json:"shards,omitempty"`
}

// MobilityKind selects the between-round user movement model.
type MobilityKind int

// The mobility models.
const (
	// MobilityStationary keeps users where they ended the round.
	MobilityStationary MobilityKind = iota + 1
	// MobilityRandomWaypoint walks each user toward uniform waypoints.
	MobilityRandomWaypoint
	// MobilityLevyWalk uses heavy-tailed flight lengths.
	MobilityLevyWalk
)

// String implements fmt.Stringer.
func (k MobilityKind) String() string {
	switch k {
	case MobilityStationary:
		return "stationary"
	case MobilityRandomWaypoint:
		return "random-waypoint"
	case MobilityLevyWalk:
		return "levy-walk"
	default:
		return fmt.Sprintf("MobilityKind(%d)", int(k))
	}
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.Mechanism == 0 {
		c.Mechanism = MechanismOnDemand
	}
	if c.Algorithm == 0 {
		c.Algorithm = AlgorithmAuto
	}
	if c.NeighborRadius == 0 {
		c.NeighborRadius = DefaultNeighborRadius
	}
	if c.UserSpeed == 0 {
		c.UserSpeed = DefaultUserSpeed
	}
	if c.UserTimeBudget == 0 {
		c.UserTimeBudget = DefaultUserTimeBudget
	}
	if c.CostPerMeter == 0 {
		c.CostPerMeter = DefaultCostPerMeter
	}
	if c.Budget == 0 {
		c.Budget = DefaultBudget
	}
	if c.RewardLambda == 0 {
		c.RewardLambda = DefaultRewardLambda
	}
	if c.DemandLevels == 0 {
		c.DemandLevels = DefaultDemandLevels
	}
	if c.BeamWidth == 0 {
		c.BeamWidth = selection.DefaultBeamWidth
	}
	if c.BeamImprove == 0 {
		c.BeamImprove = selection.DefaultBeamImprove
	}
	if c.Mobility == 0 {
		c.Mobility = MobilityStationary
	}
	return c
}

// Validate checks the defaulted configuration.
func (c Config) Validate() error {
	c = c.withDefaults()
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if c.Rounds < 0 {
		return fmt.Errorf("sim: rounds %d, want >= 0", c.Rounds)
	}
	if c.NeighborRadius <= 0 {
		return fmt.Errorf("sim: neighbor radius %v, want > 0", c.NeighborRadius)
	}
	if c.UserSpeed <= 0 || c.UserTimeBudget < 0 || c.CostPerMeter < 0 {
		return fmt.Errorf("sim: bad user parameters (speed %v, budget %v, cost %v)",
			c.UserSpeed, c.UserTimeBudget, c.CostPerMeter)
	}
	if c.Budget <= 0 || c.RewardLambda < 0 || c.DemandLevels < 1 {
		return fmt.Errorf("sim: bad reward parameters (budget %v, lambda %v, levels %d)",
			c.Budget, c.RewardLambda, c.DemandLevels)
	}
	if c.DPMaxTasks > selection.DPHardMaxTasks {
		return fmt.Errorf("sim: dp max tasks %d exceeds solver hard cap %d",
			c.DPMaxTasks, selection.DPHardMaxTasks)
	}
	// Zero means default (filled above); what reaches this check is a
	// configured negative, which would otherwise be carried into the
	// solver as a beam that keeps no states (or a polish loop with a
	// negative trip count) and silently return empty plans.
	if c.BeamWidth <= 0 {
		return fmt.Errorf("sim: beam width %d, want > 0 (0 = default %d)",
			c.BeamWidth, selection.DefaultBeamWidth)
	}
	if c.BeamImprove < 0 {
		return fmt.Errorf("sim: beam improve rounds %d, want >= 0 (0 = default %d)",
			c.BeamImprove, selection.DefaultBeamImprove)
	}
	if c.SensingTime < 0 {
		return fmt.Errorf("sim: sensing time %v, want >= 0", c.SensingTime)
	}
	if c.TimeBudgetJitter < 0 || c.TimeBudgetJitter > 1 {
		return fmt.Errorf("sim: time budget jitter %v, want in [0, 1]", c.TimeBudgetJitter)
	}
	if c.ChurnRate < 0 || c.ChurnRate >= 1 {
		return fmt.Errorf("sim: churn rate %v, want in [0, 1)", c.ChurnRate)
	}
	if c.RoundParallelism < 0 {
		return fmt.Errorf("sim: round parallelism %d, want >= 0 (0 or 1 = sequential)", c.RoundParallelism)
	}
	if c.Shards < 0 {
		return fmt.Errorf("sim: shards %d, want >= 0 (0 = unsharded engine)", c.Shards)
	}
	switch c.Mobility {
	case MobilityStationary, MobilityRandomWaypoint, MobilityLevyWalk:
	default:
		return fmt.Errorf("sim: unknown mobility %v", c.Mobility)
	}
	if c.MobilityUncertainty < 0 || c.MobilityUncertainty > 1 {
		return fmt.Errorf("sim: mobility uncertainty %v, want in [0, 1]", c.MobilityUncertainty)
	}
	if !validMechanism(c.Mechanism) {
		return fmt.Errorf("sim: unknown mechanism %v (valid kinds: %s)", c.Mechanism, mechanismKindList())
	}
	// Cross-check the mechanism's declared capabilities against the knobs
	// that supply them, so an unsatisfiable configuration fails here with
	// a mechanism-specific message instead of surfacing mid-construction.
	switch c.Mechanism {
	case MechanismAuction:
		// Budget > 0 and CostPerMeter >= 0 are enforced above; bids
		// additionally need a strictly positive travel cost, or every
		// worker would bid zero and the auction degenerates.
		if c.CostPerMeter <= 0 {
			return fmt.Errorf("sim: mechanism %v requires worker bids, so cost per meter must be > 0 (got %v)",
				c.Mechanism, c.CostPerMeter)
		}
	case MechanismIncentMe:
		// The forecast needs a mobility model; every MobilityKind accepted
		// above supplies one, and MobilityUncertainty was range-checked —
		// nothing further to verify.
	}
	return nil
}

// validMechanism reports whether k is a recognized mechanism kind.
func validMechanism(k MechanismKind) bool {
	for _, v := range mechanismKinds {
		if k == v {
			return true
		}
	}
	return false
}

// mechanismKindList renders every valid kind for error messages:
// "on-demand, fixed, ...".
func mechanismKindList() string {
	s := ""
	for i, k := range mechanismKinds {
		if i > 0 {
			s += ", "
		}
		s += k.String()
	}
	return s
}

// buildMobility constructs the configured mobility model over the area.
func (c Config) buildMobility(area geo.Rect) (mobility.Model, error) {
	switch c.Mobility {
	case MobilityStationary:
		return mobility.Stationary{}, nil
	case MobilityRandomWaypoint:
		return mobility.NewRandomWaypoint(area)
	case MobilityLevyWalk:
		return mobility.NewLevyWalk(area)
	default:
		return nil, fmt.Errorf("sim: unknown mobility %v", c.Mobility)
	}
}

// buildMechanism constructs the configured incentive mechanism.
// totalRequired is the campaign's total measurement requirement (for
// Eq. 9). Capability inputs — the fixed mechanism's RNG, the auction's
// bids and budget, the forecast — are not baked in here: they reach the
// mechanism per round through the engine's RoundInput assembly.
func (c Config) buildMechanism(totalRequired int) (incentive.Mechanism, error) {
	levels := demand.LevelMapper{N: c.DemandLevels}
	scheme, err := incentive.SchemeFromBudget(c.Budget, totalRequired, c.RewardLambda, levels)
	if err != nil {
		return nil, err
	}
	switch c.Mechanism {
	case MechanismOnDemand:
		return incentive.NewPaperOnDemand(scheme)
	case MechanismFixed:
		return incentive.NewFixed(scheme)
	case MechanismSteered:
		return incentive.NewBudgetScaledSteered(scheme.MaxReward())
	case MechanismSteeredRaw:
		return incentive.NewSteered(), nil
	case MechanismEqualWeights:
		return incentive.NewEqualWeightsOnDemand(scheme)
	case MechanismDeadlineOnly:
		return incentive.NewSingleFactorOnDemand(incentive.FactorDeadline, scheme)
	case MechanismProgressOnly:
		return incentive.NewSingleFactorOnDemand(incentive.FactorProgress, scheme)
	case MechanismNeighborsOnly:
		return incentive.NewSingleFactorOnDemand(incentive.FactorNeighbors, scheme)
	case MechanismAuction:
		return incentive.NewAuction(), nil
	case MechanismIncentMe:
		return incentive.NewIncentMe(scheme)
	default:
		return nil, fmt.Errorf("sim: unknown mechanism %v (valid kinds: %s)", c.Mechanism, mechanismKindList())
	}
}

// buildAlgorithm constructs the configured selection algorithm.
func (c Config) buildAlgorithm() (selection.Algorithm, error) {
	switch c.Algorithm {
	case AlgorithmDP:
		return &selection.DP{MaxTasks: c.DPMaxTasks}, nil
	case AlgorithmGreedy:
		return &selection.Greedy{}, nil
	case AlgorithmAuto:
		return &selection.Auto{
			Threshold:   c.DPMaxTasks,
			BeamWidth:   c.BeamWidth,
			BeamImprove: c.BeamImprove,
		}, nil
	case AlgorithmTwoOpt:
		return &selection.TwoOptGreedy{}, nil
	case AlgorithmBeam:
		return &selection.Beam{Width: c.BeamWidth, Improve: c.BeamImprove}, nil
	default:
		return nil, fmt.Errorf("sim: unknown algorithm %v", c.Algorithm)
	}
}

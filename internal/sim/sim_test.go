package sim

import (
	"math"
	"testing"

	"paydemand/internal/metrics"
	"paydemand/internal/selection"
	"paydemand/internal/task"
	"paydemand/internal/workload"
)

// smallConfig is a fast scenario for unit tests: 8 tasks, 30 users.
func smallConfig() Config {
	return Config{
		Workload: workload.Config{
			NumTasks: 8,
			NumUsers: 30,
			Required: 5,
		},
		Algorithm: AlgorithmGreedy,
	}
}

func TestRunProducesSaneResult(t *testing.T) {
	res, err := Run(smallConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mechanism != "on-demand" || res.Algorithm != "greedy" {
		t.Errorf("identity: %s/%s", res.Mechanism, res.Algorithm)
	}
	if res.Users != 30 || res.Tasks != 8 {
		t.Errorf("populations: %d users %d tasks", res.Users, res.Tasks)
	}
	if res.RoundsRun < 5 || res.RoundsRun > 15 {
		t.Errorf("RoundsRun = %d, want within deadline range", res.RoundsRun)
	}
	if len(res.Rounds) != res.RoundsRun {
		t.Errorf("rounds series length %d != RoundsRun %d", len(res.Rounds), res.RoundsRun)
	}
	if res.Coverage < 0 || res.Coverage > 1 {
		t.Errorf("Coverage = %v", res.Coverage)
	}
	if res.OverallCompleteness < 0 || res.OverallCompleteness > 1 {
		t.Errorf("OverallCompleteness = %v", res.OverallCompleteness)
	}
	if res.AvgMeasurements > 5 {
		t.Errorf("AvgMeasurements %v exceeds phi", res.AvgMeasurements)
	}
	if len(res.UserProfits) != 30 {
		t.Errorf("UserProfits = %d entries", len(res.UserProfits))
	}
	for i, p := range res.UserProfits {
		if p < 0 {
			t.Errorf("user %d has negative profit %v (irrational)", i+1, p)
		}
	}
	if res.TaskGini < 0 || res.TaskGini >= 1 {
		t.Errorf("TaskGini = %v", res.TaskGini)
	}
	if res.ProfitGini < 0 || res.ProfitGini >= 1 {
		t.Errorf("ProfitGini = %v", res.ProfitGini)
	}
}

func TestGiniBalanceOrdering(t *testing.T) {
	// The on-demand mechanism balances participation, so its task Gini
	// must come in below the fixed mechanism's (mirrors Fig. 9(a)'s
	// variance story). Average over a few seeds to dodge noise.
	meanGini := func(mech MechanismKind) float64 {
		total := 0.0
		const n = 5
		for seed := int64(0); seed < n; seed++ {
			// Paper-default scenario: rewards are budget-tight, so remote
			// tasks genuinely starve under fixed pricing.
			cfg := Config{Mechanism: mech}
			cfg.Workload.NumUsers = 60
			res, err := Run(cfg, seed)
			if err != nil {
				t.Fatal(err)
			}
			total += res.TaskGini
		}
		return total / n
	}
	onDemand := meanGini(MechanismOnDemand)
	fixed := meanGini(MechanismFixed)
	if onDemand >= fixed {
		t.Errorf("on-demand task gini %v >= fixed %v", onDemand, fixed)
	}
}

func TestRunDeterministicUnderSeed(t *testing.T) {
	a, err := Run(smallConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Coverage != b.Coverage ||
		a.TotalMeasurements != b.TotalMeasurements ||
		a.TotalRewardPaid != b.TotalRewardPaid ||
		a.AvgUserProfit != b.AvgUserProfit {
		t.Errorf("same seed diverged:\n%+v\n%+v", a, b)
	}
	for i := range a.Rounds {
		if a.Rounds[i] != b.Rounds[i] {
			t.Errorf("round %d diverged: %+v vs %+v", i+1, a.Rounds[i], b.Rounds[i])
		}
	}
}

func TestRunDifferentSeedsDiffer(t *testing.T) {
	a, err := Run(smallConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalMeasurements == b.TotalMeasurements && a.TotalRewardPaid == b.TotalRewardPaid &&
		a.AvgUserProfit == b.AvgUserProfit {
		t.Error("different seeds produced identical results; suspicious")
	}
}

func TestRunInvariants(t *testing.T) {
	cfg := smallConfig()
	s, err := New(cfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	// No task may exceed its required measurement count, and no user may
	// contribute twice to the same task (checked by Record, but verify the
	// final state).
	for _, st := range s.Board().States() {
		if st.Received() > st.Required {
			t.Errorf("task %d has %d > %d measurements", st.ID, st.Received(), st.Required)
		}
		if st.Contributors() != st.Received() {
			t.Errorf("task %d contributors %d != received %d", st.ID, st.Contributors(), st.Received())
		}
	}
	// Per-round coverage and completeness are monotone non-decreasing.
	prevCov, prevComp := 0.0, 0.0
	totalNew := 0
	for _, r := range res.Rounds {
		if r.Coverage < prevCov-1e-12 {
			t.Errorf("coverage decreased at round %d", r.Round)
		}
		if r.Completeness < prevComp-1e-12 {
			t.Errorf("completeness decreased at round %d", r.Round)
		}
		prevCov, prevComp = r.Coverage, r.Completeness
		totalNew += r.NewMeasurements
		if r.TotalMeasurements != totalNew {
			t.Errorf("round %d cumulative measurements %d != sum of new %d", r.Round, r.TotalMeasurements, totalNew)
		}
	}
	if totalNew != res.TotalMeasurements {
		t.Errorf("sum of per-round measurements %d != final total %d", totalNew, res.TotalMeasurements)
	}
	// Reward accounting: total paid equals the board's ledger, and the sum
	// of user profits is total reward minus travel costs, so it cannot
	// exceed total reward paid.
	sumProfit := 0.0
	for _, p := range res.UserProfits {
		sumProfit += p
	}
	if sumProfit > res.TotalRewardPaid+1e-9 {
		t.Errorf("sum of profits %v exceeds rewards paid %v", sumProfit, res.TotalRewardPaid)
	}
}

func TestBudgetNeverExceeded(t *testing.T) {
	// The Eq. 8/9 constraint: even in the worst case the platform never
	// pays more than B. Run several seeds and mechanisms.
	for _, mech := range []MechanismKind{MechanismOnDemand, MechanismFixed} {
		for seed := int64(0); seed < 5; seed++ {
			cfg := smallConfig()
			cfg.Mechanism = mech
			cfg.Budget = 200
			res, err := Run(cfg, seed)
			if err != nil {
				t.Fatal(err)
			}
			if res.TotalRewardPaid > cfg.Budget+1e-9 {
				t.Errorf("%v seed %d: paid %v > budget %v", mech, seed, res.TotalRewardPaid, cfg.Budget)
			}
		}
	}
}

func TestRunTwiceFails(t *testing.T) {
	s, err := New(smallConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(nil); err == nil {
		t.Error("second Run succeeded")
	}
}

func TestAllMechanismsRun(t *testing.T) {
	kinds := []MechanismKind{
		MechanismOnDemand, MechanismFixed, MechanismSteered,
		MechanismSteeredRaw, MechanismEqualWeights, MechanismDeadlineOnly,
		MechanismProgressOnly, MechanismNeighborsOnly,
	}
	for _, k := range kinds {
		cfg := smallConfig()
		cfg.Mechanism = k
		res, err := Run(cfg, 3)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if res.Mechanism == "" {
			t.Errorf("%v: empty mechanism name", k)
		}
	}
}

func TestAllAlgorithmsRun(t *testing.T) {
	for _, a := range []AlgorithmKind{AlgorithmDP, AlgorithmGreedy, AlgorithmAuto, AlgorithmTwoOpt, AlgorithmBeam} {
		cfg := smallConfig()
		cfg.Algorithm = a
		res, err := Run(cfg, 3)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if res.Algorithm != a.String() {
			t.Errorf("algorithm name %q != kind %q", res.Algorithm, a.String())
		}
	}
}

// dpVsGreedyObserver re-solves every user's problem with greedy and checks
// the DP plan dominates it instance by instance.
type dpVsGreedyObserver struct {
	BaseObserver
	t        *testing.T
	problems int
}

func (o *dpVsGreedyObserver) UserPlanned(round, userID int, p selection.Problem, plan selection.Plan) {
	o.problems++
	gr, err := (&selection.Greedy{}).Select(p)
	if err != nil {
		o.t.Fatalf("round %d user %d: greedy: %v", round, userID, err)
	}
	if plan.Profit < gr.Profit-1e-9 {
		o.t.Errorf("round %d user %d: DP profit %v < greedy %v", round, userID, plan.Profit, gr.Profit)
	}
}

func TestDPBeatsGreedyOnProfit(t *testing.T) {
	// On every individual selection instance the optimal DP plan must earn
	// at least the greedy plan's profit (population totals are NOT ordered
	// because task availability evolves differently).
	cfg := smallConfig()
	cfg.Algorithm = AlgorithmDP
	s, err := New(cfg, 17)
	if err != nil {
		t.Fatal(err)
	}
	obs := &dpVsGreedyObserver{t: t}
	if _, err := s.Run(obs); err != nil {
		t.Fatal(err)
	}
	if obs.problems == 0 {
		t.Error("observer saw no selection problems")
	}
}

func TestResetLocations(t *testing.T) {
	cfg := smallConfig()
	cfg.ResetLocations = true
	s, err := New(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	initial := make(map[int]struct{ x, y float64 })
	for _, u := range s.Users() {
		initial[u.ID] = struct{ x, y float64 }{u.Location.X, u.Location.Y}
	}
	if _, err := s.Run(nil); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, u := range s.Users() {
		if loc := initial[u.ID]; loc.x != u.Location.X || loc.y != u.Location.Y {
			moved++
		}
	}
	if moved == 0 {
		t.Error("ResetLocations left every user in place")
	}
}

func TestRoundsOverride(t *testing.T) {
	cfg := smallConfig()
	cfg.Rounds = 3
	res, err := Run(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.RoundsRun != 3 {
		t.Errorf("RoundsRun = %d, want 3", res.RoundsRun)
	}
}

func TestConfigValidateRejections(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"negative rounds", func(c *Config) { c.Rounds = -1 }},
		{"negative radius", func(c *Config) { c.NeighborRadius = -5 }},
		{"negative speed", func(c *Config) { c.UserSpeed = -1 }},
		{"negative budget", func(c *Config) { c.Budget = -100 }},
		{"negative lambda", func(c *Config) { c.RewardLambda = -0.5 }},
		{"negative levels", func(c *Config) { c.DemandLevels = -2 }},
		{"bad workload", func(c *Config) { c.Workload.NumUsers = -1 }},
		// A negative beam width would reach the solver as a beam keeping
		// no states; a negative improve count as a nonsense polish loop.
		// Both must fail loudly here, not degrade silently downstream.
		{"negative beam width", func(c *Config) { c.BeamWidth = -1 }},
		{"negative beam improve", func(c *Config) { c.BeamImprove = -3 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := smallConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
			if _, err := New(cfg, 1); err == nil {
				t.Error("New accepted invalid config")
			}
		})
	}
}

func TestKindStrings(t *testing.T) {
	if MechanismOnDemand.String() != "on-demand" || MechanismFixed.String() != "fixed" ||
		MechanismSteered.String() != "steered" || MechanismEqualWeights.String() != "equal-weights" {
		t.Error("mechanism strings wrong")
	}
	if MechanismKind(99).String() != "MechanismKind(99)" {
		t.Error("unknown mechanism string wrong")
	}
	if AlgorithmDP.String() != "dp" || AlgorithmGreedy.String() != "greedy" ||
		AlgorithmAuto.String() != "auto" || AlgorithmTwoOpt.String() != "greedy+2opt" ||
		AlgorithmBeam.String() != "beam" {
		t.Error("algorithm strings wrong")
	}
	if AlgorithmKind(99).String() != "AlgorithmKind(99)" {
		t.Error("unknown algorithm string wrong")
	}
}

// recordingObserver captures events for observer tests.
type recordingObserver struct {
	BaseObserver
	roundStarts []int
	plans       int
	roundEnds   []metrics.RoundStats
}

func (r *recordingObserver) RoundStart(round int, _ map[task.ID]float64) {
	r.roundStarts = append(r.roundStarts, round)
}

func (r *recordingObserver) UserPlanned(_ int, _ int, _ selection.Problem, _ selection.Plan) {
	r.plans++
}

func (r *recordingObserver) RoundEnd(_ int, rs metrics.RoundStats) {
	r.roundEnds = append(r.roundEnds, rs)
}

func TestObserverReceivesEvents(t *testing.T) {
	s, err := New(smallConfig(), 11)
	if err != nil {
		t.Fatal(err)
	}
	obs := &recordingObserver{}
	res, err := s.Run(obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.roundStarts) != res.RoundsRun {
		t.Errorf("RoundStart fired %d times for %d rounds", len(obs.roundStarts), res.RoundsRun)
	}
	if len(obs.roundEnds) != res.RoundsRun {
		t.Errorf("RoundEnd fired %d times for %d rounds", len(obs.roundEnds), res.RoundsRun)
	}
	if obs.plans == 0 {
		t.Error("UserPlanned never fired")
	}
	for i, rs := range obs.roundEnds {
		if rs != res.Rounds[i] {
			t.Errorf("observer round %d stats differ from result", i+1)
		}
	}
}

func TestMeanPublishedRewardWithinSchemeRange(t *testing.T) {
	cfg := smallConfig()
	res, err := Run(cfg, 13)
	if err != nil {
		t.Fatal(err)
	}
	// With budget 1000 over 8 tasks x 5 measurements = 40 required,
	// r0 = 1000/40 - 0.5*4 = 23, max = 25.
	for _, r := range res.Rounds {
		if r.OpenTasks == 0 {
			continue
		}
		if r.MeanPublishedReward < 23-1e-9 || r.MeanPublishedReward > 25+1e-9 {
			t.Errorf("round %d mean reward %v outside [23, 25]", r.Round, r.MeanPublishedReward)
		}
	}
}

func TestUserProfitsMatchLedger(t *testing.T) {
	s, err := New(smallConfig(), 21)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	roundProfitSum := 0.0
	for _, r := range res.Rounds {
		roundProfitSum += r.RoundProfit
	}
	userProfitSum := 0.0
	for _, p := range res.UserProfits {
		userProfitSum += p
	}
	if math.Abs(roundProfitSum-userProfitSum) > 1e-9 {
		t.Errorf("round profit sum %v != user profit sum %v", roundProfitSum, userProfitSum)
	}
}

package sim

import (
	"bufio"
	"encoding/json"
	"errors"
	"log/slog"
	"strings"
	"testing"

	"paydemand/internal/metrics"
)

func TestTraceObserverEmitsValidJSONL(t *testing.T) {
	s, err := New(smallConfig(), 8)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	obs := NewTraceObserver(&sb)
	res, err := s.Run(obs)
	if err != nil {
		t.Fatal(err)
	}
	if obs.Err() != nil {
		t.Fatal(obs.Err())
	}

	counts := map[string]int{}
	scanner := bufio.NewScanner(strings.NewReader(sb.String()))
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var lastRoundEnd TraceEvent
	for scanner.Scan() {
		var ev TraceEvent
		if err := json.Unmarshal(scanner.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", scanner.Text(), err)
		}
		counts[ev.Kind]++
		if ev.Kind == "round_end" {
			lastRoundEnd = ev
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if counts["round_start"] != res.RoundsRun || counts["round_end"] != res.RoundsRun {
		t.Errorf("round events: %v for %d rounds", counts, res.RoundsRun)
	}
	if counts["user_planned"] == 0 {
		t.Error("no user_planned events")
	}
	if lastRoundEnd.Stats == nil || lastRoundEnd.Stats.TotalMeasurements != res.TotalMeasurements {
		t.Errorf("final round_end stats = %+v", lastRoundEnd.Stats)
	}
}

func TestTraceObserverSkipEmptyPlans(t *testing.T) {
	s, err := New(smallConfig(), 8)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	obs := NewTraceObserver(&sb)
	obs.SkipEmptyPlans = true
	if _, err := s.Run(obs); err != nil {
		t.Fatal(err)
	}
	scanner := bufio.NewScanner(strings.NewReader(sb.String()))
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		var ev TraceEvent
		if err := json.Unmarshal(scanner.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Kind == "user_planned" && (ev.Plan == nil || ev.Plan.Empty()) {
			t.Fatal("empty plan event not skipped")
		}
	}
}

func TestLogObserver(t *testing.T) {
	s, err := New(smallConfig(), 8)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	logger := slog.New(slog.NewTextHandler(&sb, nil))
	res, err := s.Run(NewLogObserver(logger))
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if got := strings.Count(out, "round complete"); got != res.RoundsRun {
		t.Errorf("%d log lines for %d rounds", got, res.RoundsRun)
	}
	if !strings.Contains(out, "coverage=") {
		t.Errorf("log missing coverage: %s", out)
	}
}

func TestLogObserverNilLogger(t *testing.T) {
	// Must not panic; uses the default logger.
	o := NewLogObserver(nil)
	o.RoundEnd(1, metrics.RoundStats{Round: 1})
}

func TestMultiObserver(t *testing.T) {
	s, err := New(smallConfig(), 8)
	if err != nil {
		t.Fatal(err)
	}
	a := &recordingObserver{}
	b := &recordingObserver{}
	res, err := s.Run(MultiObserver{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.roundEnds) != res.RoundsRun || len(b.roundEnds) != res.RoundsRun {
		t.Errorf("fan-out wrong: %d / %d for %d rounds", len(a.roundEnds), len(b.roundEnds), res.RoundsRun)
	}
	if len(a.roundStarts) == 0 || a.plans == 0 || b.plans != a.plans {
		t.Error("fan-out missed events")
	}
}

// failingWriter injects a sink failure.
type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestTraceObserverSinkFailureDoesNotAbortRun(t *testing.T) {
	s, err := New(smallConfig(), 8)
	if err != nil {
		t.Fatal(err)
	}
	obs := NewTraceObserver(failingWriter{})
	if _, err := s.Run(obs); err != nil {
		t.Fatalf("simulation failed because of trace sink: %v", err)
	}
	if obs.Err() == nil {
		t.Error("sink failure not recorded")
	}
}

package sim

import (
	"math"
	"testing"

	"paydemand/internal/incentive"
	"paydemand/internal/task"
)

// emptyRewardMechanism publishes no rewards at all, modeling a mechanism
// whose budget is exhausted while tasks are still open.
type emptyRewardMechanism struct{}

func (emptyRewardMechanism) Name() string { return "empty-stub" }

func (emptyRewardMechanism) Requires() incentive.Capabilities { return 0 }

func (emptyRewardMechanism) RewardsInto(*incentive.RoundInput, map[task.ID]float64) error {
	return nil
}

func (emptyRewardMechanism) Rewards(*incentive.RoundInput) (map[task.ID]float64, error) {
	return map[task.ID]float64{}, nil
}

// TestEmptyRewardMapNoNaN is the regression for the MeanPublishedReward
// division: a mechanism returning an empty reward map while tasks are
// open must record a zero mean, not 0/0 = NaN, and the run's aggregate
// metrics must stay finite.
func TestEmptyRewardMapNoNaN(t *testing.T) {
	s, err := New(smallConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	s.mech = emptyRewardMechanism{}
	res, err := s.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) == 0 {
		t.Fatal("no rounds ran")
	}
	for _, rs := range res.Rounds {
		if rs.OpenTasks == 0 {
			continue
		}
		if math.IsNaN(rs.MeanPublishedReward) {
			t.Fatalf("round %d: MeanPublishedReward is NaN with empty reward map", rs.Round)
		}
		if rs.MeanPublishedReward != 0 {
			t.Errorf("round %d: MeanPublishedReward = %v, want 0", rs.Round, rs.MeanPublishedReward)
		}
	}
	// With no rewards no user has a profitable plan, so nothing is measured
	// and nothing paid — but every final metric must still be finite.
	for name, v := range map[string]float64{
		"AvgRewardPerMeasurement": res.AvgRewardPerMeasurement,
		"AvgUserProfit":           res.AvgUserProfit,
		"Coverage":                res.Coverage,
		"OverallCompleteness":     res.OverallCompleteness,
	} {
		if math.IsNaN(v) {
			t.Errorf("%s is NaN", name)
		}
	}
}

package sim

import (
	"testing"
)

func TestSensingTimeReducesThroughput(t *testing.T) {
	base := smallConfig()
	baseRes, err := Run(base, 5)
	if err != nil {
		t.Fatal(err)
	}
	slow := smallConfig()
	slow.SensingTime = 200 // 200 s per measurement eats most of the 600 s budget
	slowRes, err := Run(slow, 5)
	if err != nil {
		t.Fatal(err)
	}
	if slowRes.TotalMeasurements >= baseRes.TotalMeasurements {
		t.Errorf("sensing time did not reduce throughput: %d >= %d",
			slowRes.TotalMeasurements, baseRes.TotalMeasurements)
	}
}

func TestTimeBudgetJitter(t *testing.T) {
	cfg := smallConfig()
	cfg.TimeBudgetJitter = 0.5
	s, err := New(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 600.0, 600.0
	for _, u := range s.Users() {
		if u.TimeBudget < lo {
			lo = u.TimeBudget
		}
		if u.TimeBudget > hi {
			hi = u.TimeBudget
		}
		if u.TimeBudget < 300-1e-9 || u.TimeBudget > 900+1e-9 {
			t.Errorf("user %d budget %v outside [300, 900]", u.ID, u.TimeBudget)
		}
	}
	if hi-lo < 1 {
		t.Error("jitter produced near-identical budgets")
	}
	if _, err := s.Run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestChurnReplacesUsers(t *testing.T) {
	cfg := smallConfig()
	cfg.ChurnRate = 0.3
	s, err := New(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	// With 30 users, 30% churn and >= 5 rounds, replacements are certain.
	maxID := 0
	for _, u := range s.Users() {
		if u.ID > maxID {
			maxID = u.ID
		}
	}
	if maxID <= 30 {
		t.Errorf("max user ID %d, expected churned-in users beyond 30", maxID)
	}
	// Population size stays constant; profit ledger covers departures too.
	if len(s.Users()) != 30 {
		t.Errorf("population size %d, want 30", len(s.Users()))
	}
	if len(res.UserProfits) <= 30 {
		t.Errorf("UserProfits has %d entries, want > 30 (departed users included)", len(res.UserProfits))
	}
	for i, p := range res.UserProfits {
		if p < 0 {
			t.Errorf("participant %d has negative profit %v", i, p)
		}
	}
}

func TestChurnDeterministic(t *testing.T) {
	cfg := smallConfig()
	cfg.ChurnRate = 0.2
	a, err := Run(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalMeasurements != b.TotalMeasurements || a.AvgUserProfit != b.AvgUserProfit {
		t.Error("churned simulation not deterministic under seed")
	}
}

func TestExtensionValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"negative sensing time", func(c *Config) { c.SensingTime = -1 }},
		{"jitter above 1", func(c *Config) { c.TimeBudgetJitter = 1.5 }},
		{"negative jitter", func(c *Config) { c.TimeBudgetJitter = -0.1 }},
		{"churn = 1", func(c *Config) { c.ChurnRate = 1 }},
		{"negative churn", func(c *Config) { c.ChurnRate = -0.5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := smallConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestMobilityModelsRun(t *testing.T) {
	for _, mob := range []MobilityKind{MobilityStationary, MobilityRandomWaypoint, MobilityLevyWalk} {
		cfg := smallConfig()
		cfg.Mobility = mob
		res, err := Run(cfg, 6)
		if err != nil {
			t.Fatalf("%v: %v", mob, err)
		}
		if res.TotalMeasurements == 0 {
			t.Errorf("%v: no measurements", mob)
		}
	}
}

func TestMobilityMovesIdleUsers(t *testing.T) {
	// With no open tasks (rounds beyond every deadline) a mobile
	// population still drifts, while a stationary one does not.
	run := func(mob MobilityKind) []float64 {
		cfg := smallConfig()
		cfg.Mobility = mob
		cfg.Rounds = 20 // beyond the max deadline of 15
		s, err := New(cfg, 31)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(nil); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 0, len(s.Users()))
		for _, u := range s.Users() {
			out = append(out, u.Location.X, u.Location.Y)
		}
		return out
	}
	stationary1 := run(MobilityStationary)
	stationary2 := run(MobilityStationary)
	waypoint := run(MobilityRandomWaypoint)
	same := true
	for i := range stationary1 {
		if stationary1[i] != waypoint[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("random-waypoint population ended exactly where stationary did")
	}
	for i := range stationary1 {
		if stationary1[i] != stationary2[i] {
			t.Fatal("stationary run not deterministic")
		}
	}
}

func TestMobilityDeterministic(t *testing.T) {
	cfg := smallConfig()
	cfg.Mobility = MobilityLevyWalk
	a, err := Run(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalMeasurements != b.TotalMeasurements || a.AvgUserProfit != b.AvgUserProfit {
		t.Error("mobile simulation not deterministic under seed")
	}
}

func TestMobilityKindString(t *testing.T) {
	if MobilityStationary.String() != "stationary" ||
		MobilityRandomWaypoint.String() != "random-waypoint" ||
		MobilityLevyWalk.String() != "levy-walk" {
		t.Error("mobility strings wrong")
	}
	if MobilityKind(42).String() != "MobilityKind(42)" {
		t.Error("unknown mobility string wrong")
	}
}

func TestMobilityValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.Mobility = MobilityKind(42)
	if err := cfg.Validate(); err == nil {
		t.Error("unknown mobility accepted")
	}
}

func TestChurnKeepsOncePerTaskRule(t *testing.T) {
	cfg := smallConfig()
	cfg.ChurnRate = 0.4
	s, err := New(cfg, 12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(nil); err != nil {
		t.Fatal(err)
	}
	for _, st := range s.Board().States() {
		if st.Received() > st.Required {
			t.Errorf("task %d over-filled: %d > %d", st.ID, st.Received(), st.Required)
		}
		if st.Contributors() != st.Received() {
			t.Errorf("task %d contributors %d != received %d", st.ID, st.Contributors(), st.Received())
		}
	}
}

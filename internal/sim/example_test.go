package sim_test

import (
	"fmt"

	"paydemand/internal/selection"
	"paydemand/internal/sim"
	"paydemand/internal/workload"
)

// Example runs a small deterministic campaign and reads the result.
func Example() {
	cfg := sim.Config{
		Workload: workload.Config{NumTasks: 6, NumUsers: 40, Required: 4},
	}
	res, err := sim.Run(cfg, 42)
	if err != nil {
		panic(err)
	}
	fmt.Println("mechanism:", res.Mechanism)
	fmt.Printf("coverage: %.0f%%\n", res.Coverage*100)
	fmt.Println("measurements:", res.TotalMeasurements)
	// Output:
	// mechanism: on-demand
	// coverage: 100%
	// measurements: 24
}

// Example_observer attaches an observer that counts how many plans were
// non-empty.
func Example_observer() {
	cfg := sim.Config{
		Workload: workload.Config{NumTasks: 6, NumUsers: 40, Required: 4},
	}
	s, err := sim.New(cfg, 42)
	if err != nil {
		panic(err)
	}
	counter := &activePlanCounter{}
	if _, err := s.Run(counter); err != nil {
		panic(err)
	}
	fmt.Println("someone worked:", counter.active > 0)
	// Output:
	// someone worked: true
}

type activePlanCounter struct {
	sim.BaseObserver
	active int
}

func (c *activePlanCounter) UserPlanned(_ int, _ int, _ selection.Problem, plan selection.Plan) {
	if !plan.Empty() {
		c.active++
	}
}

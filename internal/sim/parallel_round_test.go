package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"paydemand/internal/metrics"
	"paydemand/internal/selection"
	"paydemand/internal/stats"
	"paydemand/internal/task"
	"paydemand/internal/workload"
)

// trialJSON runs one simulation and returns its serialized result plus the
// raw TrialResult (for the engine's json-excluded diagnostics).
func trialJSON(t *testing.T, cfg Config, seed int64) ([]byte, metrics.TrialResult) {
	t.Helper()
	s, err := New(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return raw, res
}

// TestParallelRoundDeterminism verifies the speculative engine's core
// contract: for every solver, trial JSON is byte-identical between the
// sequential loop and the parallel engine at worker counts 2 and 8.
func TestParallelRoundDeterminism(t *testing.T) {
	algorithms := []AlgorithmKind{AlgorithmDP, AlgorithmGreedy, AlgorithmTwoOpt, AlgorithmAuto, AlgorithmBeam}
	scenarios := []struct {
		name string
		cfg  Config
	}{
		{
			// Paper-shaped workload, shrunk for DP tractability.
			name: "paper",
			cfg: Config{
				Workload: workload.Config{NumUsers: 40, NumTasks: 12, Required: 8},
				Rounds:   6,
			},
		},
		{
			// High contention: phi = 1 and far more users than tasks, so
			// almost every commit fills a task and forces replays of every
			// later user still holding it as a candidate.
			name: "contention",
			cfg: Config{
				Workload: workload.Config{NumUsers: 60, NumTasks: 10, Required: 1},
				Rounds:   4,
			},
		},
		{
			// Mobility + churn exercise the post-selection RNG draws, which
			// must be reached in the same stream positions either way.
			name: "churn",
			cfg: Config{
				Workload:  workload.Config{NumUsers: 30, NumTasks: 10, Required: 5},
				Rounds:    5,
				ChurnRate: 0.1,
				Mobility:  MobilityRandomWaypoint,
			},
		},
	}
	for _, alg := range algorithms {
		for _, sc := range scenarios {
			t.Run(fmt.Sprintf("%s/%s", alg, sc.name), func(t *testing.T) {
				cfg := sc.cfg
				cfg.Algorithm = alg
				seq, seqRes := trialJSON(t, cfg, 404)
				if seqRes.ConflictReplays != 0 || seqRes.SpeculativeSolves != 0 {
					t.Fatalf("sequential run reported engine diagnostics: %d/%d",
						seqRes.SpeculativeSolves, seqRes.ConflictReplays)
				}
				for _, workers := range []int{1, 2, 8} {
					pcfg := cfg
					pcfg.RoundParallelism = workers
					par, parRes := trialJSON(t, pcfg, 404)
					if !bytes.Equal(seq, par) {
						t.Errorf("workers=%d: trial JSON differs from sequential (lens %d vs %d)",
							workers, len(seq), len(par))
					}
					if workers > 1 && parRes.SpeculativeSolves == 0 {
						t.Errorf("workers=%d: engine reported no speculative solves", workers)
					}
					if sc.name == "contention" && workers > 1 && parRes.ConflictReplays == 0 {
						t.Errorf("workers=%d: contention scenario forced no replays", workers)
					}
				}
			})
		}
	}
}

// TestParallelRoundTraceDeterminism verifies that the full observer event
// stream — including per-user plans and candidate counts, in commit order
// — is byte-identical between sequential and parallel runs.
func TestParallelRoundTraceDeterminism(t *testing.T) {
	cfg := Config{
		Workload: workload.Config{NumUsers: 50, NumTasks: 10, Required: 2},
		Rounds:   4,
	}
	run := func(workers int) []byte {
		t.Helper()
		c := cfg
		c.RoundParallelism = workers
		s, err := New(c, 99)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		obs := NewTraceObserver(&buf)
		if _, err := s.Run(obs); err != nil {
			t.Fatal(err)
		}
		if err := obs.Err(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq := run(1)
	for _, workers := range []int{2, 8} {
		if par := run(workers); !bytes.Equal(seq, par) {
			t.Errorf("workers=%d: trace differs from sequential", workers)
		}
	}
}

// TestParallelRoundReplayedPlansDropClosedTasks pins the conflict-replay
// semantics with the Plan.Touches helper: in a phi = 1 scenario, no two
// committed plans may touch the same task, even though many speculative
// plans raced for the same ones.
func TestParallelRoundReplayedPlansDropClosedTasks(t *testing.T) {
	cfg := Config{
		Workload:         workload.Config{NumUsers: 60, NumTasks: 10, Required: 1},
		Rounds:           3,
		Algorithm:        AlgorithmGreedy,
		RoundParallelism: 4,
	}
	s, err := New(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	committed := make(map[task.ID]int)
	obs := &planRecorder{onPlan: func(plan selection.Plan) {
		mu.Lock()
		defer mu.Unlock()
		for id := range committed {
			if plan.Touches(id) {
				committed[id]++
			}
		}
		for _, id := range plan.Order {
			if _, seen := committed[id]; !seen {
				committed[id] = 1
			}
		}
	}}
	res, err := s.Run(obs)
	if err != nil {
		t.Fatal(err)
	}
	for id, n := range committed {
		if n > 1 {
			t.Errorf("task %d committed by %d plans despite phi = 1", id, n)
		}
	}
	if res.ConflictReplays == 0 {
		t.Error("phi = 1 contention produced no conflict replays")
	}
}

type planRecorder struct {
	BaseObserver
	onPlan func(selection.Plan)
}

func (r *planRecorder) UserPlanned(_ int, _ int, _ selection.Problem, plan selection.Plan) {
	if !plan.Empty() {
		r.onPlan(plan)
	}
}

// TestRoundParallelismValidate covers the config plumbing.
func TestRoundParallelismValidate(t *testing.T) {
	cfg := Config{Workload: workload.Config{NumUsers: 5, NumTasks: 3}}
	cfg.RoundParallelism = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative RoundParallelism validated")
	}
	cfg.RoundParallelism = 0
	if err := cfg.Validate(); err != nil {
		t.Errorf("RoundParallelism 0 rejected: %v", err)
	}
	cfg.RoundParallelism = 8
	if err := cfg.Validate(); err != nil {
		t.Errorf("RoundParallelism 8 rejected: %v", err)
	}
}

// TestParallelRoundStress hammers the speculative engine under -race with
// many trials of small simulations at varying worker counts, checking each
// against its sequential twin.
func TestParallelRoundStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	rng := stats.NewRNG(123)
	for trial := 0; trial < 12; trial++ {
		cfg := Config{
			Workload: workload.Config{
				NumUsers: rng.IntBetween(5, 40),
				NumTasks: rng.IntBetween(3, 15),
				Required: rng.IntBetween(1, 4),
			},
			Rounds:    rng.IntBetween(2, 4),
			Algorithm: AlgorithmAuto,
		}
		seed := rng.Int63()
		seq, _ := trialJSON(t, cfg, seed)
		cfg.RoundParallelism = rng.IntBetween(2, 8)
		par, _ := trialJSON(t, cfg, seed)
		if !bytes.Equal(seq, par) {
			t.Fatalf("trial %d (workers=%d): parallel output diverged", trial, cfg.RoundParallelism)
		}
	}
}

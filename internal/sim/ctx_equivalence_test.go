package sim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"paydemand/internal/workload"
)

// equivCfg is a scenario heavy enough to exercise every hot path the
// round-level cache touches: open-task churn across deadlines, per-task
// sensing overhead, user mobility, and population churn.
func equivCfg(alg AlgorithmKind) Config {
	return Config{
		Workload:    workload.Config{NumUsers: 40, NumTasks: 12},
		Algorithm:   alg,
		Rounds:      6,
		SensingTime: 20,
		Mobility:    MobilityRandomWaypoint,
		ChurnRate:   0.05,
	}
}

// TestRoundContextDeterminism asserts the headline guarantee of the
// round-level caching architecture: for every solver, a trial run with the
// shared per-round context produces trial JSON byte-identical to the same
// trial with the context disabled (per-user distance recomputation). The
// cache is a pure lookup of the same float operations, so not a single
// bit may move.
func TestRoundContextDeterminism(t *testing.T) {
	algs := []AlgorithmKind{AlgorithmDP, AlgorithmGreedy, AlgorithmAuto, AlgorithmTwoOpt, AlgorithmBeam}
	for _, alg := range algs {
		t.Run(alg.String(), func(t *testing.T) {
			run := func(disable bool) []byte {
				cfg := equivCfg(alg)
				cfg.DisableRoundContext = disable
				res, err := Run(cfg, 4242)
				if err != nil {
					t.Fatal(err)
				}
				out, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				return out
			}
			cached, direct := run(false), run(true)
			if !bytes.Equal(cached, direct) {
				t.Fatalf("cached trial JSON differs from direct trial JSON\ncached: %s\ndirect: %s", cached, direct)
			}
		})
	}
}

// TestConfigRejectsOversizedDPMaxTasks pins the loud failure for the DP
// overflow misconfiguration at the config layer.
func TestConfigRejectsOversizedDPMaxTasks(t *testing.T) {
	cfg := Config{DPMaxTasks: 64}
	err := cfg.Validate()
	if err == nil {
		t.Fatal("DPMaxTasks 64 validated, want error")
	}
	if !strings.Contains(err.Error(), "hard cap") {
		t.Errorf("error %q does not mention the hard cap", err)
	}
}

package sim

import (
	"fmt"
	"testing"

	"paydemand/internal/stats"
	"paydemand/internal/workload"
)

// BenchmarkRunRoundParallel times whole rounds through the speculative
// parallel engine over a users x tasks x workers grid. workers=1 is the
// sequential loop (the PR 2 baseline); higher counts solve every user's
// selection concurrently against the round-start snapshot and commit in
// order, so on an n-core host the solver-dominated configurations (DP with
// m near the task count, where one Select costs milliseconds) scale with
// min(n, workers). Output is byte-identical at every worker count
// (TestParallelRoundDeterminism).
func BenchmarkRunRoundParallel(b *testing.B) {
	const benchRounds = 3
	grids := []struct {
		alg          AlgorithmKind
		users, tasks int
	}{
		// DP with m near 16: a single Select dominates round time, the
		// best case for speculation.
		{AlgorithmDP, 50, 16},
		// Greedy at scale: cheap per-user solves, stressing engine
		// overhead rather than solver parallelism.
		{AlgorithmGreedy, 200, 40},
		{AlgorithmAuto, 200, 20},
	}
	for _, g := range grids {
		for _, workers := range []int{1, 2, 4, 8} {
			name := fmt.Sprintf("%s/users=%d/tasks=%d/workers=%d", g.alg, g.users, g.tasks, workers)
			b.Run(name, func(b *testing.B) {
				cfg := Config{
					Workload:         workload.Config{NumUsers: g.users, NumTasks: g.tasks},
					Algorithm:        g.alg,
					Rounds:           benchRounds,
					RoundParallelism: workers,
					// Scale the reward budget with the task count so every
					// grid point can fund level-1 rewards.
					Budget: 50 * float64(g.tasks),
				}
				sc, err := workload.Generate(stats.NewRNG(42), cfg.Workload)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					s, err := NewFromScenario(cfg, sc, 7)
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					for k := 1; k <= benchRounds; k++ {
						if _, err := s.runRound(k, BaseObserver{}); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}

// BenchmarkRunRound times the simulation's inner loop — one full sensing
// round: reward update, per-user distributed selection, upload, and
// bookkeeping — over a users x tasks grid. The scenario is generated once
// per configuration; each iteration rebuilds the simulation outside the
// timer and runs the first three rounds inside it, so the measurement
// covers exactly the per-round hot path the round-level cache targets.
func BenchmarkRunRound(b *testing.B) {
	const benchRounds = 3
	grids := []struct{ users, tasks int }{
		{50, 20},
		{200, 20},
		{200, 40},
	}
	for _, alg := range []AlgorithmKind{AlgorithmGreedy, AlgorithmAuto} {
		for _, g := range grids {
			name := fmt.Sprintf("%s/users=%d/tasks=%d", alg, g.users, g.tasks)
			b.Run(name, func(b *testing.B) {
				cfg := Config{
					Workload:  workload.Config{NumUsers: g.users, NumTasks: g.tasks},
					Algorithm: alg,
					Rounds:    benchRounds,
					// Scale the reward budget with the task count so every
					// grid point can fund level-1 rewards (20 tasks matches
					// the paper-default budget of 1000).
					Budget: 50 * float64(g.tasks),
				}
				sc, err := workload.Generate(stats.NewRNG(42), cfg.Workload)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					s, err := NewFromScenario(cfg, sc, 7)
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					for k := 1; k <= benchRounds; k++ {
						if _, err := s.runRound(k, BaseObserver{}); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}

package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"

	"paydemand/internal/metrics"
	"paydemand/internal/selection"
	"paydemand/internal/task"
)

// TraceEvent is one line of a simulation trace (JSONL). Kind is one of
// "round_start", "user_planned", "round_end".
type TraceEvent struct {
	Kind  string `json:"kind"`
	Round int    `json:"round"`
	// Rewards is set on round_start: the published reward per open task.
	Rewards map[task.ID]float64 `json:"rewards,omitempty"`
	// UserID, Candidates, Plan are set on user_planned.
	UserID     int             `json:"user_id,omitempty"`
	Candidates int             `json:"candidates,omitempty"`
	Plan       *selection.Plan `json:"plan,omitempty"`
	// Stats is set on round_end.
	Stats *metrics.RoundStats `json:"stats,omitempty"`
}

// TraceObserver streams every simulation event as one JSON object per
// line, suitable for offline analysis (jq, pandas, ...). Encoding errors
// are remembered and returned by Err; the simulation itself is never
// interrupted by a failing trace sink.
type TraceObserver struct {
	enc *json.Encoder
	err error
	// SkipEmptyPlans drops user_planned events whose plan selects nothing,
	// which dominate late rounds.
	SkipEmptyPlans bool
}

var _ Observer = (*TraceObserver)(nil)

// NewTraceObserver writes JSONL trace events to w.
func NewTraceObserver(w io.Writer) *TraceObserver {
	return &TraceObserver{enc: json.NewEncoder(w)}
}

// Err returns the first encoding error, if any.
func (t *TraceObserver) Err() error { return t.err }

func (t *TraceObserver) emit(ev TraceEvent) {
	if t.err != nil {
		return
	}
	t.err = t.enc.Encode(ev)
}

// RoundStart implements Observer.
func (t *TraceObserver) RoundStart(round int, rewards map[task.ID]float64) {
	t.emit(TraceEvent{Kind: "round_start", Round: round, Rewards: rewards})
}

// UserPlanned implements Observer.
func (t *TraceObserver) UserPlanned(round, userID int, p selection.Problem, plan selection.Plan) {
	if t.SkipEmptyPlans && plan.Empty() {
		return
	}
	t.emit(TraceEvent{
		Kind:       "user_planned",
		Round:      round,
		UserID:     userID,
		Candidates: len(p.Candidates),
		Plan:       &plan,
	})
}

// RoundEnd implements Observer.
func (t *TraceObserver) RoundEnd(round int, stats metrics.RoundStats) {
	t.emit(TraceEvent{Kind: "round_end", Round: round, Stats: &stats})
}

// LogObserver narrates round progress through a slog.Logger, for humans
// watching a long simulation.
type LogObserver struct {
	BaseObserver
	logger *slog.Logger
}

var _ Observer = (*LogObserver)(nil)

// NewLogObserver logs round summaries to logger (nil means slog.Default).
func NewLogObserver(logger *slog.Logger) *LogObserver {
	if logger == nil {
		logger = slog.Default()
	}
	return &LogObserver{logger: logger}
}

// RoundEnd implements Observer.
func (l *LogObserver) RoundEnd(round int, stats metrics.RoundStats) {
	l.logger.Info("round complete",
		"round", round,
		"open_tasks", stats.OpenTasks,
		"active_users", stats.ActiveUsers,
		"new_measurements", stats.NewMeasurements,
		"coverage", fmt.Sprintf("%.1f%%", stats.Coverage*100),
		"completeness", fmt.Sprintf("%.1f%%", stats.Completeness*100),
		"reward_paid", fmt.Sprintf("%.2f", stats.RewardPaid),
	)
}

// MultiObserver fans events out to several observers in order.
type MultiObserver []Observer

var _ Observer = MultiObserver{}

// RoundStart implements Observer.
func (m MultiObserver) RoundStart(round int, rewards map[task.ID]float64) {
	for _, o := range m {
		o.RoundStart(round, rewards)
	}
}

// UserPlanned implements Observer.
func (m MultiObserver) UserPlanned(round, userID int, p selection.Problem, plan selection.Plan) {
	for _, o := range m {
		o.UserPlanned(round, userID, p, plan)
	}
}

// RoundEnd implements Observer.
func (m MultiObserver) RoundEnd(round int, stats metrics.RoundStats) {
	for _, o := range m {
		o.RoundEnd(round, stats)
	}
}

package incentive

import (
	"errors"
	"fmt"
	"math"

	"paydemand/internal/task"
)

// IncentMe prices tasks against predicted — not observed — user supply,
// in the style of IncentMe-like mobility-aware incentive systems: a task
// that looks well-covered today but whose neighborhood is forecast to
// drain before its deadline is priced up now, while a task that mobility
// will serve anyway stays cheap.
//
// Per view, with h = max(1, Deadline - Round) rounds to the deadline:
//
//	supply   = Mobility.ExpectedNeighbors(Neighbors, h)
//	scarcity = max(0, Required - Received) / (supply + 1)
//
// Scarcities are max-normalized over the round's views (in view order) and
// mapped through the reward scheme's demand-level rule, so IncentMe reuses
// the paper's level ladder with a forecast-driven demand signal.
type IncentMe struct {
	scheme RewardScheme

	// scarcity is grow-only scratch; reused across rounds.
	scarcity []float64
}

var _ Mechanism = (*IncentMe)(nil)

// NewIncentMe constructs the mechanism. scheme supplies the
// level-to-reward rule; the mobility forecast arrives per round through
// RoundInput (the mobility capability).
func NewIncentMe(scheme RewardScheme) (*IncentMe, error) {
	if err := scheme.Validate(); err != nil {
		return nil, err
	}
	return &IncentMe{scheme: scheme}, nil
}

// Name implements Mechanism.
func (m *IncentMe) Name() string { return "incentme" }

// Requires implements Mechanism: pricing needs the mobility forecast.
func (m *IncentMe) Requires() Capabilities { return CapMobility }

// Scheme returns the mechanism's reward scheme.
func (m *IncentMe) Scheme() RewardScheme { return m.scheme }

// Rewards implements Mechanism.
func (m *IncentMe) Rewards(in *RoundInput) (map[task.ID]float64, error) {
	return allocRewards(m, in)
}

// RewardsInto implements Mechanism.
func (m *IncentMe) RewardsInto(in *RoundInput, out map[task.ID]float64) error {
	if in.Mobility == nil {
		return errors.New("incentive: incentme: RoundInput.Mobility is nil (mechanism requires the mobility capability)")
	}
	m.scarcity = m.scarcity[:0]
	maxScarcity := 0.0
	for _, v := range in.Views {
		h := v.Deadline - in.Round
		if h < 1 {
			h = 1
		}
		supply := in.Mobility.ExpectedNeighbors(v.Neighbors, h)
		if supply < 0 || math.IsNaN(supply) || math.IsInf(supply, 0) {
			return fmt.Errorf("incentive: incentme: forecast %s returned %v expected neighbors for task %d, want finite >= 0",
				in.Mobility.Name(), supply, v.ID)
		}
		remaining := v.Required - v.Received
		if remaining < 0 {
			remaining = 0
		}
		s := float64(remaining) / (supply + 1)
		m.scarcity = append(m.scarcity, s)
		if s > maxScarcity {
			maxScarcity = s
		}
	}
	for i, v := range in.Views {
		norm := 0.0
		if maxScarcity > 0 {
			norm = m.scarcity[i] / maxScarcity
		}
		out[v.ID] = m.scheme.RewardForDemand(norm)
	}
	return nil
}

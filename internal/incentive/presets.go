package incentive

import (
	"fmt"

	"paydemand/internal/ahp"
	"paydemand/internal/demand"
)

// NewOnDemandFromAHP builds the on-demand mechanism with criteria weights
// derived from an AHP pairwise comparison matrix over the three demand
// criteria (deadline, progress, neighbors), using the paper's
// column-normalized row-mean method.
func NewOnDemandFromAHP(pm *ahp.PairwiseMatrix, lambdas [3]float64, scheme RewardScheme) (*OnDemand, error) {
	if pm.N() != 3 {
		return nil, fmt.Errorf("incentive: need a 3x3 criteria matrix, got %dx%d", pm.N(), pm.N())
	}
	w := pm.PaperWeights()
	cfg := demand.Config{
		Weights: [3]float64{w[0], w[1], w[2]},
		Lambda1: lambdas[0], Lambda2: lambdas[1], Lambda3: lambdas[2],
	}
	return NewOnDemand(cfg, scheme)
}

// NewPaperOnDemand builds the on-demand mechanism exactly as the paper's
// evaluation configures it: Table I's AHP matrix and unit lambda scales.
func NewPaperOnDemand(scheme RewardScheme) (*OnDemand, error) {
	return NewOnDemandFromAHP(ahp.PaperExampleMatrix(), [3]float64{1, 1, 1}, scheme)
}

// NewEqualWeightsOnDemand is the no-AHP ablation: the three demand factors
// are weighted equally instead of by the AHP-derived priorities.
func NewEqualWeightsOnDemand(scheme RewardScheme) (*OnDemand, error) {
	cfg := demand.Config{
		Weights: [3]float64{1.0 / 3, 1.0 / 3, 1.0 / 3},
		Lambda1: 1, Lambda2: 1, Lambda3: 1,
	}
	return NewOnDemand(cfg, scheme)
}

// SingleFactor identifies one of the three demand criteria for the
// single-factor ablations.
type SingleFactor int

// The three demand criteria.
const (
	FactorDeadline SingleFactor = iota + 1
	FactorProgress
	FactorNeighbors
)

// String implements fmt.Stringer.
func (f SingleFactor) String() string {
	switch f {
	case FactorDeadline:
		return "deadline-only"
	case FactorProgress:
		return "progress-only"
	case FactorNeighbors:
		return "neighbors-only"
	default:
		return fmt.Sprintf("SingleFactor(%d)", int(f))
	}
}

// NewSingleFactorOnDemand is the single-criterion ablation: the demand is
// driven entirely by one factor.
func NewSingleFactorOnDemand(factor SingleFactor, scheme RewardScheme) (*OnDemand, error) {
	var w [3]float64
	switch factor {
	case FactorDeadline:
		w[0] = 1
	case FactorProgress:
		w[1] = 1
	case FactorNeighbors:
		w[2] = 1
	default:
		return nil, fmt.Errorf("incentive: unknown factor %v", factor)
	}
	cfg := demand.Config{Weights: w, Lambda1: 1, Lambda2: 1, Lambda3: 1}
	return NewOnDemand(cfg, scheme)
}

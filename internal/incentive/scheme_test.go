package incentive

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"paydemand/internal/demand"
)

func paperScheme(t *testing.T) RewardScheme {
	t.Helper()
	s, err := SchemeFromBudget(1000, 400, 0.5, demand.LevelMapper{N: 5})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPaperR0 checks Eq. 9 with the paper's evaluation constants:
// B = 1000, 20 tasks x 20 measurements, lambda = 0.5, N = 5 => r0 = 0.5.
func TestPaperR0(t *testing.T) {
	r0, err := R0FromBudget(1000, 400, 0.5, demand.LevelMapper{N: 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r0-0.5) > 1e-12 {
		t.Errorf("r0 = %v, want 0.5", r0)
	}
}

func TestRewardEq7(t *testing.T) {
	s := paperScheme(t)
	// r = r0 + lambda*(DL-1): levels 1..5 -> 0.5, 1.0, 1.5, 2.0, 2.5.
	for lvl := 1; lvl <= 5; lvl++ {
		want := 0.5 + 0.5*float64(lvl-1)
		if got := s.Reward(lvl); math.Abs(got-want) > 1e-12 {
			t.Errorf("Reward(%d) = %v, want %v", lvl, got, want)
		}
	}
	if got := s.Reward(0); got != s.Reward(1) {
		t.Errorf("Reward(0) not clamped: %v", got)
	}
	if got := s.Reward(9); got != s.Reward(5) {
		t.Errorf("Reward(9) not clamped: %v", got)
	}
}

func TestMaxRewardAndPayoutEq8(t *testing.T) {
	s := paperScheme(t)
	if got := s.MaxReward(); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("MaxReward = %v, want 2.5", got)
	}
	// Eq. 8: worst-case payout with the derived r0 exactly equals B.
	if got := s.MaxTotalPayout(400); math.Abs(got-1000) > 1e-9 {
		t.Errorf("MaxTotalPayout = %v, want 1000", got)
	}
}

func TestBudgetConstraintProperty(t *testing.T) {
	// For any valid budget/requirement/lambda/levels combination, the
	// derived scheme's worst-case payout never exceeds the budget.
	f := func(budgetRaw, lambdaRaw uint16, reqRaw, nRaw uint8) bool {
		budget := 1 + float64(budgetRaw)
		lambda := float64(lambdaRaw) / 1000
		totalRequired := 1 + int(reqRaw)
		levels := demand.LevelMapper{N: 1 + int(nRaw)%10}
		s, err := SchemeFromBudget(budget, totalRequired, lambda, levels)
		if err != nil {
			return errors.Is(err, ErrBudgetTooSmall) // legal outcome
		}
		return s.MaxTotalPayout(totalRequired) <= budget+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestR0FromBudgetErrors(t *testing.T) {
	lm := demand.LevelMapper{N: 5}
	if _, err := R0FromBudget(1, 400, 0.5, lm); !errors.Is(err, ErrBudgetTooSmall) {
		t.Errorf("tiny budget err = %v", err)
	}
	if _, err := R0FromBudget(1000, 0, 0.5, lm); err == nil {
		t.Error("zero required accepted")
	}
	if _, err := R0FromBudget(-5, 400, 0.5, lm); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := R0FromBudget(1000, 400, -1, lm); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := R0FromBudget(1000, 400, 0.5, demand.LevelMapper{N: 0}); err == nil {
		t.Error("invalid level mapper accepted")
	}
}

func TestSchemeValidate(t *testing.T) {
	if err := (RewardScheme{R0: 0, Lambda: 1, Levels: demand.LevelMapper{N: 5}}).Validate(); err == nil {
		t.Error("r0=0 accepted")
	}
	if err := (RewardScheme{R0: 1, Lambda: -1, Levels: demand.LevelMapper{N: 5}}).Validate(); err == nil {
		t.Error("negative lambda accepted")
	}
	if err := (RewardScheme{R0: 1, Lambda: 1, Levels: demand.LevelMapper{N: 0}}).Validate(); err == nil {
		t.Error("bad levels accepted")
	}
}

func TestRewardForDemand(t *testing.T) {
	s := paperScheme(t)
	if got := s.RewardForDemand(0.0); got != 0.5 {
		t.Errorf("RewardForDemand(0) = %v, want 0.5", got)
	}
	if got := s.RewardForDemand(1.0); got != 2.5 {
		t.Errorf("RewardForDemand(1) = %v, want 2.5", got)
	}
	if got := s.RewardForDemand(0.45); got != 1.5 {
		t.Errorf("RewardForDemand(0.45) = %v, want 1.5 (level 3)", got)
	}
}

func TestRewardMonotoneInDemandProperty(t *testing.T) {
	s := paperScheme(t)
	f := func(aRaw, bRaw uint16) bool {
		a := float64(aRaw) / 65535
		b := float64(bRaw) / 65535
		if a > b {
			a, b = b, a
		}
		return s.RewardForDemand(a) <= s.RewardForDemand(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

package incentive

import (
	"errors"
	"fmt"

	"paydemand/internal/demand"
)

// Errors returned by reward-scheme construction.
var (
	ErrBudgetTooSmall = errors.New("incentive: budget cannot fund level-1 rewards (r0 <= 0)")
	ErrBadScheme      = errors.New("incentive: invalid reward scheme")
)

// RewardScheme is the paper's level-to-reward rule (Eq. 7):
//
//	r_ti^k = r0 + lambda * (DL_ti^k - 1)
//
// where DL is the task's demand level at round k.
type RewardScheme struct {
	// R0 is the reward of demand level 1, in dollars.
	R0 float64 `json:"r0"`
	// Lambda is the per-level reward increment, in dollars.
	Lambda float64 `json:"lambda"`
	// Levels maps normalized demand onto demand levels.
	Levels demand.LevelMapper `json:"levels"`
}

// Validate checks the scheme.
func (s RewardScheme) Validate() error {
	if err := s.Levels.Validate(); err != nil {
		return err
	}
	if s.R0 <= 0 {
		return fmt.Errorf("%w: r0 = %v, want > 0", ErrBadScheme, s.R0)
	}
	if s.Lambda < 0 {
		return fmt.Errorf("%w: lambda = %v, want >= 0", ErrBadScheme, s.Lambda)
	}
	return nil
}

// Reward returns the reward of the given demand level (Eq. 7). Levels are
// clamped into [1, Levels.N].
func (s RewardScheme) Reward(level int) float64 {
	if level < 1 {
		level = 1
	}
	if level > s.Levels.N {
		level = s.Levels.N
	}
	return s.R0 + s.Lambda*float64(level-1)
}

// RewardForDemand maps a normalized demand straight to its reward.
func (s RewardScheme) RewardForDemand(normalized float64) float64 {
	return s.Reward(s.Levels.Level(normalized))
}

// MaxReward returns the reward of the highest demand level,
// r0 + lambda*(N-1), the per-measurement bound used in Eq. 8.
func (s RewardScheme) MaxReward() float64 {
	return s.R0 + s.Lambda*float64(s.Levels.N-1)
}

// MaxTotalPayout returns the worst-case total payout for a campaign needing
// totalRequired measurements (the left side of Eq. 8).
func (s RewardScheme) MaxTotalPayout(totalRequired int) float64 {
	return float64(totalRequired) * s.MaxReward()
}

// R0FromBudget derives the level-1 reward from the platform budget via
// Eq. 9:
//
//	r0 = B / (Sigma phi_i) - lambda*(N - 1)
//
// which guarantees the worst-case payout never exceeds B. It returns
// ErrBudgetTooSmall if the derived r0 is not positive.
//
// The paper's defaults (B = 1000, 20 tasks x 20 measurements, lambda = 0.5,
// N = 5) give r0 = 1000/400 - 0.5*4 = 0.5.
func R0FromBudget(budget float64, totalRequired int, lambda float64, levels demand.LevelMapper) (float64, error) {
	if err := levels.Validate(); err != nil {
		return 0, err
	}
	if totalRequired <= 0 {
		return 0, fmt.Errorf("%w: total required measurements %d", ErrBadScheme, totalRequired)
	}
	if budget <= 0 {
		return 0, fmt.Errorf("%w: budget %v", ErrBadScheme, budget)
	}
	if lambda < 0 {
		return 0, fmt.Errorf("%w: lambda %v", ErrBadScheme, lambda)
	}
	r0 := budget/float64(totalRequired) - lambda*float64(levels.N-1)
	if r0 <= 0 {
		return 0, fmt.Errorf("%w: budget %v, required %d, lambda %v, levels %d yield r0 = %v",
			ErrBudgetTooSmall, budget, totalRequired, lambda, levels.N, r0)
	}
	return r0, nil
}

// SchemeFromBudget builds a complete RewardScheme from the platform budget
// via R0FromBudget.
func SchemeFromBudget(budget float64, totalRequired int, lambda float64, levels demand.LevelMapper) (RewardScheme, error) {
	r0, err := R0FromBudget(budget, totalRequired, lambda, levels)
	if err != nil {
		return RewardScheme{}, err
	}
	return RewardScheme{R0: r0, Lambda: lambda, Levels: levels}, nil
}

package incentive

import (
	"paydemand/internal/stats"
	"paydemand/internal/task"
)

// Fixed is the baseline fixed incentive mechanism of Section VI: each task
// draws a uniform random demand level when first seen, is priced by Eq. 7,
// and its reward never changes in later rounds.
type Fixed struct {
	scheme RewardScheme
	rng    *stats.RNG
	levels map[task.ID]int
}

var _ Mechanism = (*Fixed)(nil)

// NewFixed constructs the mechanism. rng drives the one-time random level
// draw per task.
func NewFixed(scheme RewardScheme, rng *stats.RNG) (*Fixed, error) {
	if err := scheme.Validate(); err != nil {
		return nil, err
	}
	return &Fixed{
		scheme: scheme,
		rng:    rng,
		levels: make(map[task.ID]int),
	}, nil
}

// Name implements Mechanism.
func (m *Fixed) Name() string { return "fixed" }

// Rewards implements Mechanism. The first time a task is seen it draws a
// uniform level in [1, N]; afterwards the memoized level is reused, so the
// reward is constant across rounds.
func (m *Fixed) Rewards(_ int, views []TaskView) (map[task.ID]float64, error) {
	out := make(map[task.ID]float64, len(views))
	for _, v := range views {
		lvl, ok := m.levels[v.ID]
		if !ok {
			lvl = m.rng.IntBetween(1, m.scheme.Levels.N)
			m.levels[v.ID] = lvl
		}
		out[v.ID] = m.scheme.Reward(lvl)
	}
	return out, nil
}

// Level returns the memoized level for a task and whether it has been
// drawn yet.
func (m *Fixed) Level(id task.ID) (int, bool) {
	lvl, ok := m.levels[id]
	return lvl, ok
}

package incentive

import (
	"errors"

	"paydemand/internal/task"
)

// Fixed is the baseline fixed incentive mechanism of Section VI: each task
// draws a uniform random demand level when first seen, is priced by Eq. 7,
// and its reward never changes in later rounds.
type Fixed struct {
	scheme RewardScheme
	levels map[task.ID]int
}

var _ Mechanism = (*Fixed)(nil)

// NewFixed constructs the mechanism. The one-time random level draw per
// task comes from the RoundInput's RNG (the CapRNG capability), so the
// same seeded stream prices identically wherever the mechanism runs.
func NewFixed(scheme RewardScheme) (*Fixed, error) {
	if err := scheme.Validate(); err != nil {
		return nil, err
	}
	return &Fixed{
		scheme: scheme,
		levels: make(map[task.ID]int),
	}, nil
}

// Name implements Mechanism.
func (m *Fixed) Name() string { return "fixed" }

// Requires implements Mechanism: the level draws need the seeded stream.
func (m *Fixed) Requires() Capabilities { return CapRNG }

// Rewards implements Mechanism.
func (m *Fixed) Rewards(in *RoundInput) (map[task.ID]float64, error) {
	return allocRewards(m, in)
}

// RewardsInto implements Mechanism. The first time a task is seen it draws
// a uniform level in [1, N] from in.RNG; afterwards the memoized level is
// reused, so the reward is constant across rounds. Draws happen in view
// order — the stream consumption is part of the byte-identity contract.
func (m *Fixed) RewardsInto(in *RoundInput, out map[task.ID]float64) error {
	if in.RNG == nil {
		return errors.New("incentive: fixed: RoundInput.RNG is nil (mechanism requires the rng capability)")
	}
	for _, v := range in.Views {
		lvl, ok := m.levels[v.ID]
		if !ok {
			lvl = in.RNG.IntBetween(1, m.scheme.Levels.N)
			m.levels[v.ID] = lvl
		}
		out[v.ID] = m.scheme.Reward(lvl)
	}
	return nil
}

// Level returns the memoized level for a task and whether it has been
// drawn yet.
func (m *Fixed) Level(id task.ID) (int, bool) {
	lvl, ok := m.levels[id]
	return lvl, ok
}

package incentive

import (
	"fmt"

	"paydemand/internal/demand"
	"paydemand/internal/task"
)

// OnDemand is the paper's demand-based dynamic incentive mechanism
// (Section IV). At each round it computes every open task's demand
// indicator from the deadline, completing progress, and neighboring-user
// factors, weighs them with AHP-derived weights, normalizes, maps the
// result to a demand level, and prices the task by Eq. 7.
type OnDemand struct {
	demandCfg demand.Config
	scheme    RewardScheme

	// Grow-only scratch for the hot path; reused across rounds.
	inputs []demand.Inputs
	norm   []float64
}

var _ Mechanism = (*OnDemand)(nil)

// NewOnDemand constructs the mechanism. demandCfg supplies the factor
// weights and scales; scheme supplies the level-to-reward rule.
func NewOnDemand(demandCfg demand.Config, scheme RewardScheme) (*OnDemand, error) {
	if err := demandCfg.Validate(); err != nil {
		return nil, fmt.Errorf("incentive: on-demand: %w", err)
	}
	if err := scheme.Validate(); err != nil {
		return nil, fmt.Errorf("incentive: on-demand: %w", err)
	}
	return &OnDemand{demandCfg: demandCfg, scheme: scheme}, nil
}

// Name implements Mechanism.
func (m *OnDemand) Name() string { return "on-demand" }

// Requires implements Mechanism: the demand factors need only the views.
func (m *OnDemand) Requires() Capabilities { return 0 }

// Scheme returns the mechanism's reward scheme.
func (m *OnDemand) Scheme() RewardScheme { return m.scheme }

// DemandConfig returns the mechanism's demand-indicator configuration.
func (m *OnDemand) DemandConfig() demand.Config { return m.demandCfg }

// Rewards implements Mechanism.
func (m *OnDemand) Rewards(in *RoundInput) (map[task.ID]float64, error) {
	return allocRewards(m, in)
}

// RewardsInto implements Mechanism. It evaluates Eqs. 2-7 for every view,
// reusing the mechanism's scratch so steady-state calls allocate nothing.
func (m *OnDemand) RewardsInto(in *RoundInput, out map[task.ID]float64) error {
	m.inputs = m.inputs[:0]
	for _, v := range in.Views {
		m.inputs = append(m.inputs, demand.Inputs{
			Deadline:  v.Deadline,
			Progress:  v.Progress(),
			Neighbors: v.Neighbors,
		})
	}
	norm, err := m.demandCfg.NormalizedDemandsInto(in.Round, m.inputs, m.norm)
	if err != nil {
		return fmt.Errorf("incentive: on-demand round %d: %w", in.Round, err)
	}
	m.norm = norm
	for i, v := range in.Views {
		out[v.ID] = m.scheme.RewardForDemand(norm[i])
	}
	return nil
}

// DemandLevels returns the demand level the mechanism would assign each
// view at the given round, for diagnostics and experiment traces.
func (m *OnDemand) DemandLevels(round int, views []TaskView) (map[task.ID]int, error) {
	inputs := make([]demand.Inputs, len(views))
	for i, v := range views {
		inputs[i] = demand.Inputs{
			Deadline:  v.Deadline,
			Progress:  v.Progress(),
			Neighbors: v.Neighbors,
		}
	}
	norm, err := m.demandCfg.NormalizedDemands(round, inputs)
	if err != nil {
		return nil, fmt.Errorf("incentive: on-demand round %d: %w", round, err)
	}
	out := make(map[task.ID]int, len(views))
	for i, v := range views {
		out[v.ID] = m.scheme.Levels.Level(norm[i])
	}
	return out, nil
}

package incentive

import (
	"fmt"
	"math"

	"paydemand/internal/task"
)

// Steered is the steered crowdsensing mechanism of Kawajiri, Shimosaka and
// Kashima (UbiComp 2014) as described by the paper's Eq. 13:
//
//	R_ti^k = Rc + mu * DeltaQ(x)
//
// where x is the number of measurements the task has received and
// DeltaQ(x) = Q(x+1) - Q(x) is the expected quality improvement of the
// next measurement. With the standard coverage-style quality
// Q(x) = 1 - (1-delta)^x this gives DeltaQ(x) = delta*(1-delta)^x, so the
// reward decays geometrically from Rc + mu*delta toward Rc as measurements
// arrive. The paper's constants (Rc = 5, mu = 100, delta = 0.2) put the
// reward in [5, 25], matching the range quoted in Section VI.
type Steered struct {
	// Rc is the constant base reward paid regardless of quality.
	Rc float64
	// Mu scales the expected quality improvement.
	Mu float64
	// Delta is the per-measurement quality gain rate in (0, 1).
	Delta float64
}

var _ Mechanism = (*Steered)(nil)

// Paper constants for the steered mechanism (Section VI).
const (
	DefaultSteeredRc    = 5.0
	DefaultSteeredMu    = 100.0
	DefaultSteeredDelta = 0.2
)

// NewSteered constructs the mechanism with the paper's constants.
func NewSteered() *Steered {
	return &Steered{Rc: DefaultSteeredRc, Mu: DefaultSteeredMu, Delta: DefaultSteeredDelta}
}

// NewBudgetScaledSteered constructs a steered mechanism whose reward range
// is scaled to top out at maxReward while preserving the paper's 1:5
// base-to-peak ratio (Rc = maxReward/5, mu*delta = maxReward - Rc).
//
// The paper quotes Eq. 13's constants as giving rewards in [5, 25], yet its
// Fig. 9(b) plots steered's average reward per measurement near 2.3 $ — on
// the same scale as the budget-derived on-demand rewards. The comparison
// figures are therefore run with steered scaled to the same budget as the
// other mechanisms; this constructor produces that variant (see DESIGN.md,
// "Substitutions").
func NewBudgetScaledSteered(maxReward float64) (*Steered, error) {
	if maxReward <= 0 {
		return nil, fmt.Errorf("incentive: steered max reward %v, want > 0", maxReward)
	}
	rc := maxReward / (DefaultSteeredRc + DefaultSteeredMu*DefaultSteeredDelta) * DefaultSteeredRc
	m := &Steered{
		Rc:    rc,
		Mu:    (maxReward - rc) / DefaultSteeredDelta,
		Delta: DefaultSteeredDelta,
	}
	return m, m.Validate()
}

// Validate checks the parameters.
func (m *Steered) Validate() error {
	if m.Rc < 0 {
		return fmt.Errorf("incentive: steered: Rc = %v, want >= 0", m.Rc)
	}
	if m.Mu < 0 {
		return fmt.Errorf("incentive: steered: mu = %v, want >= 0", m.Mu)
	}
	if m.Delta <= 0 || m.Delta >= 1 {
		return fmt.Errorf("incentive: steered: delta = %v, want in (0, 1)", m.Delta)
	}
	return nil
}

// Name implements Mechanism.
func (m *Steered) Name() string { return "steered" }

// Quality returns Q(x) = 1 - (1-delta)^x, the expected quality of a task
// after x measurements.
func (m *Steered) Quality(x int) float64 {
	if x < 0 {
		x = 0
	}
	return 1 - math.Pow(1-m.Delta, float64(x))
}

// RewardAt returns the reward offered for the (x+1)th measurement.
func (m *Steered) RewardAt(x int) float64 {
	if x < 0 {
		x = 0
	}
	return m.Rc + m.Mu*(m.Quality(x+1)-m.Quality(x))
}

// Requires implements Mechanism: Eq. 13 needs only the views.
func (m *Steered) Requires() Capabilities { return 0 }

// Rewards implements Mechanism.
func (m *Steered) Rewards(in *RoundInput) (map[task.ID]float64, error) {
	return allocRewards(m, in)
}

// RewardsInto implements Mechanism.
func (m *Steered) RewardsInto(in *RoundInput, out map[task.ID]float64) error {
	if err := m.Validate(); err != nil {
		return err
	}
	for _, v := range in.Views {
		out[v.ID] = m.RewardAt(v.Received)
	}
	return nil
}

package incentive

import (
	"math"
	"testing"

	"paydemand/internal/stats"
	"paydemand/internal/task"
)

func TestAuctionBasics(t *testing.T) {
	m := NewAuction()
	if m.Name() != "auction" {
		t.Errorf("Name = %q", m.Name())
	}
	if m.Requires() != CapBids|CapBudget {
		t.Errorf("Requires = %v", m.Requires())
	}
	if got := m.Requires().String(); got != "bids+budget" {
		t.Errorf("Requires().String() = %q", got)
	}
}

func TestAuctionClearHandExamples(t *testing.T) {
	m := NewAuction()
	for _, tc := range []struct {
		name    string
		costs   []float64
		budget  float64
		winners int
		pay     float64
	}{
		// All three fit: 3 <= 10/3 fails (3.33 ok), so check: 1<=10, 2<=5,
		// 3<=3.33 -> k=3, pay = 10/3.
		{"all win", []float64{1, 2, 3}, 10, 3, 10.0 / 3},
		// k=1 (9 > 10/2): pay = min(10, 9) = 9, capped by the losing bid.
		{"critical payment from loser", []float64{2, 9}, 10, 1, 9},
		// No loser to cap: pay = B/k.
		{"no loser", []float64{2}, 10, 1, 10},
		// Cheapest bid exceeds the budget: nobody wins.
		{"budget too small", []float64{5, 6}, 4, 0, 0},
		// Zero-cost bids are legal and win.
		{"zero cost", []float64{0, 0}, 1, 2, 0.5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			bids := make([]Bid, len(tc.costs))
			for i, c := range tc.costs {
				bids[i] = Bid{Worker: i, Cost: c}
			}
			oc, err := m.Clear(bids, tc.budget)
			if err != nil {
				t.Fatal(err)
			}
			if oc.Winners != tc.winners {
				t.Errorf("winners = %d, want %d", oc.Winners, tc.winners)
			}
			if math.Abs(oc.Pay-tc.pay) > 1e-12 {
				t.Errorf("pay = %v, want %v", oc.Pay, tc.pay)
			}
		})
	}
}

func TestAuctionClearValidation(t *testing.T) {
	m := NewAuction()
	for _, budget := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := m.Clear([]Bid{{Worker: 0, Cost: 1}}, budget); err == nil {
			t.Errorf("budget %v accepted", budget)
		}
	}
	for _, cost := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := m.Clear([]Bid{{Worker: 0, Cost: cost}}, 10); err == nil {
			t.Errorf("bid cost %v accepted", cost)
		}
	}
}

// TestAuctionDeterministicOrder pins that winner selection works on the
// bids sorted by (Cost, Worker) — never on input (or any map) order: the
// same multiset of bids clears identically under every permutation, and
// cost ties break toward the lower worker index.
func TestAuctionDeterministicOrder(t *testing.T) {
	m := NewAuction()
	base := []Bid{{Worker: 3, Cost: 2}, {Worker: 0, Cost: 5}, {Worker: 1, Cost: 2}, {Worker: 2, Cost: 7}}
	want, err := m.Clear(base, 12)
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := append([]Bid(nil), want.Order...)
	// Ties at cost 2: worker 1 before worker 3.
	if wantOrder[0].Worker != 1 || wantOrder[1].Worker != 3 {
		t.Fatalf("tie-break order = %v", wantOrder)
	}
	perms := [][]int{{1, 0, 3, 2}, {3, 2, 1, 0}, {2, 3, 0, 1}}
	for _, p := range perms {
		shuffled := make([]Bid, len(base))
		for i, j := range p {
			shuffled[i] = base[j]
		}
		oc, err := m.Clear(shuffled, 12)
		if err != nil {
			t.Fatal(err)
		}
		if oc.Winners != want.Winners || oc.Pay != want.Pay {
			t.Errorf("perm %v: outcome (%d, %v) != (%d, %v)", p, oc.Winners, oc.Pay, want.Winners, want.Pay)
		}
		for i := range wantOrder {
			if oc.Order[i] != wantOrder[i] {
				t.Errorf("perm %v: order[%d] = %v, want %v", p, i, oc.Order[i], wantOrder[i])
			}
		}
	}
}

// TestAuctionTruthfulness is the property test behind the mechanism's
// truthfulness claim: across seeded populations, no worker can increase
// its utility (payment minus TRUE cost, zero for losers) by bidding
// anything other than its true cost — and total payments never exceed
// the budget, while every winner is paid at least its bid.
func TestAuctionTruthfulness(t *testing.T) {
	m := NewAuction()
	rng := stats.NewRNG(271)
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(20)
		budget := rng.Uniform(5, 60)
		truth := make([]float64, n)
		bids := make([]Bid, n)
		for w := range bids {
			truth[w] = rng.Uniform(0, 12)
			bids[w] = Bid{Worker: w, Cost: truth[w]}
		}
		base, err := m.Clear(bids, budget)
		if err != nil {
			t.Fatal(err)
		}
		if paid := float64(base.Winners) * base.Pay; paid > budget+1e-9 {
			t.Fatalf("trial %d: total payment %v exceeds budget %v", trial, paid, budget)
		}
		for _, b := range base.Order[:base.Winners] {
			if base.Pay < b.Cost-1e-9 {
				t.Fatalf("trial %d: winner %d paid %v below its bid %v", trial, b.Worker, base.Pay, b.Cost)
			}
		}
		baseUtil := make([]float64, n)
		for _, b := range base.Order[:base.Winners] {
			baseUtil[b.Worker] = base.Pay - truth[b.Worker]
		}
		// Every worker tries a spread of misreports, including tiny
		// perturbations around its truthful bid and around the payment.
		for w := 0; w < n; w++ {
			for _, lie := range []float64{
				0, truth[w] * 0.5, truth[w] * 0.9, truth[w] * 1.1, truth[w] * 2,
				truth[w] + 1e-6, math.Max(0, truth[w]-1e-6),
				base.Pay, base.Pay + 1e-6, math.Max(0, base.Pay-1e-6),
			} {
				bids[w].Cost = lie
				oc, err := m.Clear(bids, budget)
				if err != nil {
					t.Fatal(err)
				}
				util := 0.0
				for _, b := range oc.Order[:oc.Winners] {
					if b.Worker == w {
						util = oc.Pay - truth[w]
					}
				}
				if util > baseUtil[w]+1e-9 {
					t.Fatalf("trial %d: worker %d (true cost %v) gains %v by bidding %v",
						trial, w, truth[w], util-baseUtil[w], lie)
				}
			}
			bids[w].Cost = truth[w]
		}
	}
}

func TestAuctionRewardsInto(t *testing.T) {
	m := NewAuction()
	views := []TaskView{
		{ID: 4, Deadline: 10, Required: 5},
		{ID: 9, Deadline: 10, Required: 5},
	}
	out := map[task.ID]float64{}
	in := &RoundInput{
		Round:  1,
		Views:  views,
		Bids:   []Bid{{Worker: 0, Cost: 1}, {Worker: 1, Cost: 2}},
		Budget: 10,
	}
	if err := m.RewardsInto(in, out); err != nil {
		t.Fatal(err)
	}
	// k=2, pay = 10/2 = 5, every task priced at the clearing rate.
	if len(out) != 2 || out[4] != 5 || out[9] != 5 {
		t.Errorf("rewards = %v, want both tasks at 5", out)
	}

	// Budget below the cheapest bid: nothing is priced at all.
	clear(out)
	in.Budget = 0.5
	if err := m.RewardsInto(in, out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("unaffordable round still priced tasks: %v", out)
	}

	// Validation errors surface through RewardsInto too.
	in.Budget = math.NaN()
	if err := m.RewardsInto(in, out); err == nil {
		t.Error("NaN budget accepted")
	}
}

// TestAuctionZeroAllocSteadyState pins that repeated clears reuse the
// sorted-bid scratch.
func TestAuctionZeroAllocSteadyState(t *testing.T) {
	m := NewAuction()
	bids := make([]Bid, 64)
	for i := range bids {
		bids[i] = Bid{Worker: i, Cost: float64((i * 37) % 19)}
	}
	if _, err := m.Clear(bids, 100); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := m.Clear(bids, 100); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state Clear allocates %v objects/op, want 0", allocs)
	}
}

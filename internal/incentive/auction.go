package incentive

import (
	"fmt"
	"math"
	"slices"

	"paydemand/internal/task"
)

// Auction is a budget-limited truthful reverse auction in the
// proportional-share style of Singer's budget-feasible mechanisms (and the
// truthful scheduling mechanisms of Han et al.): workers bid their claimed
// participation costs, the platform selects the cheapest prefix the budget
// can cover, and every winner is paid the same critical price.
//
// Clearing rule, per round, over bids sorted ascending by (Cost, Worker):
//
//	k   = the largest prefix length with sorted[k-1].Cost <= B/k
//	pay = min(B/k, sorted[k].Cost)   (the second term only when a k+1th
//	                                  bid exists)
//
// Winner selection is monotone (lowering a bid never loses a won slot) and
// pay is each winner's critical value — the highest bid at which it still
// wins — so truthful bidding is a dominant strategy (pinned by the
// truthfulness property test). Total payment k*pay <= k*(B/k) = B, so the
// budget is never exceeded, and pay >= every winner's bid, so winners
// never run at a loss.
//
// The uniform payment doubles as the round's per-measurement reward for
// every open task: the auction prices labor, not demand, so all tasks
// offer the market-clearing rate. A round whose budget cannot afford even
// the cheapest bid publishes no rewards at all.
type Auction struct {
	// order is grow-only scratch holding the sorted bids.
	order []Bid
}

var _ Mechanism = (*Auction)(nil)

// NewAuction constructs the mechanism. The budget and the bids arrive per
// round through RoundInput (the bids and budget capabilities).
func NewAuction() *Auction { return &Auction{} }

// Name implements Mechanism.
func (m *Auction) Name() string { return "auction" }

// Requires implements Mechanism: clearing needs the worker bids and the
// campaign budget.
func (m *Auction) Requires() Capabilities { return CapBids | CapBudget }

// AuctionOutcome describes one clearing: the bids in ascending (Cost,
// Worker) order, the number of winners (a prefix of Order), and the
// uniform payment each winner receives. Order aliases the mechanism's
// scratch and is only valid until the next Clear or RewardsInto call.
type AuctionOutcome struct {
	// Order holds the bids sorted ascending by (Cost, Worker).
	Order []Bid
	// Winners is the number of winning bids; the winners are
	// Order[:Winners].
	Winners int
	// Pay is the uniform payment per winner (0 when Winners is 0).
	Pay float64
}

// compareBids orders ascending by cost, breaking ties by worker index so
// the sort — and with it winner selection — is deterministic. A named
// top-level function keeps slices.SortFunc allocation-free.
func compareBids(a, b Bid) int {
	switch {
	case a.Cost < b.Cost:
		return -1
	case a.Cost > b.Cost:
		return 1
	case a.Worker < b.Worker:
		return -1
	case a.Worker > b.Worker:
		return 1
	}
	return 0
}

// Clear runs the clearing rule over one round's bids. It validates, sorts
// into the mechanism's scratch (bids itself is left untouched), and
// returns the outcome; steady-state calls allocate nothing.
func (m *Auction) Clear(bids []Bid, budget float64) (AuctionOutcome, error) {
	if budget <= 0 || math.IsNaN(budget) || math.IsInf(budget, 0) {
		return AuctionOutcome{}, fmt.Errorf("incentive: auction: budget %v, want finite > 0", budget)
	}
	for _, b := range bids {
		if b.Cost < 0 || math.IsNaN(b.Cost) || math.IsInf(b.Cost, 0) {
			return AuctionOutcome{}, fmt.Errorf("incentive: auction: worker %d bid %v, want finite >= 0", b.Worker, b.Cost)
		}
	}
	m.order = append(m.order[:0], bids...)
	slices.SortFunc(m.order, compareBids)
	k, pay := clearSorted(m.order, budget)
	return AuctionOutcome{Order: m.order, Winners: k, Pay: pay}, nil
}

// clearSorted applies the proportional-share rule to bids already sorted
// ascending by (Cost, Worker).
func clearSorted(sorted []Bid, budget float64) (k int, pay float64) {
	for i, b := range sorted {
		if b.Cost > budget/float64(i+1) {
			break
		}
		k = i + 1
	}
	if k == 0 {
		return 0, 0
	}
	pay = budget / float64(k)
	if k < len(sorted) && sorted[k].Cost < pay {
		pay = sorted[k].Cost
	}
	return k, pay
}

// Rewards implements Mechanism.
func (m *Auction) Rewards(in *RoundInput) (map[task.ID]float64, error) {
	return allocRewards(m, in)
}

// RewardsInto implements Mechanism: it clears the round's auction and
// prices every open task at the uniform winner payment. When the budget
// affords no worker, no task is priced.
func (m *Auction) RewardsInto(in *RoundInput, out map[task.ID]float64) error {
	oc, err := m.Clear(in.Bids, in.Budget)
	if err != nil {
		return err
	}
	if oc.Winners == 0 {
		return nil
	}
	for _, v := range in.Views {
		out[v.ID] = oc.Pay
	}
	return nil
}

package incentive

import (
	"math"
	"testing"

	"paydemand/internal/demand"
	"paydemand/internal/geo"
	"paydemand/internal/stats"
	"paydemand/internal/task"
)

func testViews() []TaskView {
	return []TaskView{
		{ID: 1, Location: geo.Pt(0, 0), Deadline: 10, Required: 20, Received: 0, Neighbors: 0},
		{ID: 2, Location: geo.Pt(100, 0), Deadline: 10, Required: 20, Received: 10, Neighbors: 5},
		{ID: 3, Location: geo.Pt(0, 100), Deadline: 2, Required: 20, Received: 19, Neighbors: 10},
	}
}

func TestTaskViewProgress(t *testing.T) {
	v := TaskView{Required: 20, Received: 5}
	if got := v.Progress(); got != 0.25 {
		t.Errorf("Progress = %v, want 0.25", got)
	}
	v.Received = 25
	if got := v.Progress(); got != 1 {
		t.Errorf("Progress capped = %v, want 1", got)
	}
	if got := (TaskView{Required: 0}).Progress(); got != 1 {
		t.Errorf("Progress with zero required = %v, want 1", got)
	}
}

func TestOnDemandRewardsWithinSchemeRange(t *testing.T) {
	scheme := paperScheme(t)
	m, err := NewPaperOnDemand(scheme)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "on-demand" {
		t.Errorf("Name = %q", m.Name())
	}
	rewards, err := m.Rewards(&RoundInput{Round: 1, Views: testViews()})
	if err != nil {
		t.Fatal(err)
	}
	if len(rewards) != 3 {
		t.Fatalf("rewards for %d tasks", len(rewards))
	}
	for id, r := range rewards {
		if r < scheme.R0-1e-12 || r > scheme.MaxReward()+1e-12 {
			t.Errorf("task %d reward %v outside [%v, %v]", id, r, scheme.R0, scheme.MaxReward())
		}
	}
}

func TestOnDemandDirectionality(t *testing.T) {
	// A starving task (no progress, no neighbors, near deadline) must be
	// paid at least as much as a nearly-done, well-surrounded task.
	m, err := NewPaperOnDemand(paperScheme(t))
	if err != nil {
		t.Fatal(err)
	}
	views := []TaskView{
		{ID: 1, Deadline: 2, Required: 20, Received: 0, Neighbors: 0},
		{ID: 2, Deadline: 15, Required: 20, Received: 19, Neighbors: 10},
	}
	rewards, err := m.Rewards(&RoundInput{Round: 2, Views: views})
	if err != nil {
		t.Fatal(err)
	}
	if rewards[1] <= rewards[2] {
		t.Errorf("starving task reward %v <= satisfied task reward %v", rewards[1], rewards[2])
	}
}

func TestOnDemandDemandLevels(t *testing.T) {
	m, err := NewPaperOnDemand(paperScheme(t))
	if err != nil {
		t.Fatal(err)
	}
	levels, err := m.DemandLevels(2, testViews())
	if err != nil {
		t.Fatal(err)
	}
	for id, lvl := range levels {
		if lvl < 1 || lvl > 5 {
			t.Errorf("task %d level %d outside 1..5", id, lvl)
		}
	}
	// Rewards must equal scheme.Reward(level) exactly.
	rewards, err := m.Rewards(&RoundInput{Round: 2, Views: testViews()})
	if err != nil {
		t.Fatal(err)
	}
	for id, lvl := range levels {
		if got, want := rewards[id], m.Scheme().Reward(lvl); got != want {
			t.Errorf("task %d reward %v != Reward(level %d) = %v", id, got, lvl, want)
		}
	}
}

func TestNewOnDemandRejectsInvalid(t *testing.T) {
	bad := demand.Config{Weights: [3]float64{1, 1, 1}, Lambda1: 1, Lambda2: 1, Lambda3: 1}
	if _, err := NewOnDemand(bad, paperScheme(t)); err == nil {
		t.Error("invalid demand config accepted")
	}
	good := demand.DefaultConfig()
	if _, err := NewOnDemand(good, RewardScheme{}); err == nil {
		t.Error("invalid scheme accepted")
	}
}

func TestFixedRewardsStableAcrossRounds(t *testing.T) {
	m, err := NewFixed(paperScheme(t))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "fixed" {
		t.Errorf("Name = %q", m.Name())
	}
	rng := stats.NewRNG(42)
	views := testViews()
	r1, err := m.Rewards(&RoundInput{Round: 1, Views: views, RNG: rng})
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the views heavily; fixed rewards must not move.
	views[0].Received = 19
	views[1].Neighbors = 0
	r2, err := m.Rewards(&RoundInput{Round: 7, Views: views, RNG: rng})
	if err != nil {
		t.Fatal(err)
	}
	for id := range r1 {
		if r1[id] != r2[id] {
			t.Errorf("task %d fixed reward changed: %v -> %v", id, r1[id], r2[id])
		}
	}
}

func TestFixedLevelsWithinRange(t *testing.T) {
	m, err := NewFixed(paperScheme(t))
	if err != nil {
		t.Fatal(err)
	}
	views := make([]TaskView, 100)
	for i := range views {
		views[i] = TaskView{ID: task.ID(i), Deadline: 10, Required: 20}
	}
	if _, err := m.Rewards(&RoundInput{Round: 1, Views: views, RNG: stats.NewRNG(7)}); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i := range views {
		lvl, ok := m.Level(task.ID(i))
		if !ok {
			t.Fatalf("task %d has no memoized level", i)
		}
		if lvl < 1 || lvl > 5 {
			t.Fatalf("task %d level %d", i, lvl)
		}
		seen[lvl] = true
	}
	if len(seen) < 3 {
		t.Errorf("only %d distinct levels in 100 draws; RNG suspicious", len(seen))
	}
	if _, ok := m.Level(task.ID(999)); ok {
		t.Error("unknown task has a level")
	}
}

func TestNewFixedRejectsInvalidScheme(t *testing.T) {
	if _, err := NewFixed(RewardScheme{}); err == nil {
		t.Error("invalid scheme accepted")
	}
}

func TestSteeredPaperRange(t *testing.T) {
	m := NewSteered()
	if m.Name() != "steered" {
		t.Errorf("Name = %q", m.Name())
	}
	// Paper: reward varies in [5, 25] with Rc=5, mu=100, delta=0.2.
	if got := m.RewardAt(0); math.Abs(got-25) > 1e-9 {
		t.Errorf("RewardAt(0) = %v, want 25", got)
	}
	if got := m.RewardAt(1000); math.Abs(got-5) > 1e-6 {
		t.Errorf("RewardAt(inf) = %v, want -> 5", got)
	}
	prev := math.Inf(1)
	for x := 0; x < 30; x++ {
		r := m.RewardAt(x)
		if r >= prev {
			t.Fatalf("steered reward not strictly decreasing at x=%d", x)
		}
		if r < m.Rc-1e-9 || r > m.Rc+m.Mu*m.Delta+1e-9 {
			t.Fatalf("steered reward %v out of range at x=%d", r, x)
		}
		prev = r
	}
}

func TestSteeredQuality(t *testing.T) {
	m := NewSteered()
	if got := m.Quality(0); got != 0 {
		t.Errorf("Quality(0) = %v", got)
	}
	if got := m.Quality(1); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Quality(1) = %v, want 0.2", got)
	}
	if got := m.Quality(-5); got != 0 {
		t.Errorf("Quality(-5) = %v", got)
	}
	// Quality is increasing and bounded by 1.
	prev := -1.0
	for x := 0; x < 50; x++ {
		q := m.Quality(x)
		if q <= prev || q > 1 {
			t.Fatalf("Quality not increasing/bounded at x=%d: %v", x, q)
		}
		prev = q
	}
}

func TestSteeredRewards(t *testing.T) {
	m := NewSteered()
	rewards, err := m.Rewards(&RoundInput{Round: 3, Views: testViews()})
	if err != nil {
		t.Fatal(err)
	}
	// Task 1 has 0 measurements -> max reward; task 3 has 19 -> near Rc.
	if rewards[1] <= rewards[2] || rewards[2] <= rewards[3] {
		t.Errorf("steered rewards not decreasing in received count: %v", rewards)
	}
}

func TestBudgetScaledSteered(t *testing.T) {
	m, err := NewBudgetScaledSteered(2.5)
	if err != nil {
		t.Fatal(err)
	}
	// Preserves the paper's 1:5 base-to-peak ratio at the new scale.
	if math.Abs(m.RewardAt(0)-2.5) > 1e-9 {
		t.Errorf("peak reward = %v, want 2.5", m.RewardAt(0))
	}
	if math.Abs(m.Rc-0.5) > 1e-9 {
		t.Errorf("Rc = %v, want 0.5", m.Rc)
	}
	if math.Abs(m.Mu-10) > 1e-9 {
		t.Errorf("Mu = %v, want 10", m.Mu)
	}
	if m.Delta != DefaultSteeredDelta {
		t.Errorf("Delta = %v", m.Delta)
	}
	if _, err := NewBudgetScaledSteered(0); err == nil {
		t.Error("zero max reward accepted")
	}
	if _, err := NewBudgetScaledSteered(-3); err == nil {
		t.Error("negative max reward accepted")
	}
}

func TestSteeredValidate(t *testing.T) {
	bad := &Steered{Rc: 5, Mu: 100, Delta: 1.5}
	if err := bad.Validate(); err == nil {
		t.Error("delta > 1 accepted")
	}
	if _, err := bad.Rewards(&RoundInput{Round: 1, Views: testViews()}); err == nil {
		t.Error("Rewards with bad params succeeded")
	}
	bad2 := &Steered{Rc: -1, Mu: 100, Delta: 0.2}
	if err := bad2.Validate(); err == nil {
		t.Error("negative Rc accepted")
	}
	bad3 := &Steered{Rc: 5, Mu: -1, Delta: 0.2}
	if err := bad3.Validate(); err == nil {
		t.Error("negative mu accepted")
	}
}

func TestPresets(t *testing.T) {
	scheme := paperScheme(t)
	eq, err := NewEqualWeightsOnDemand(scheme)
	if err != nil {
		t.Fatal(err)
	}
	w := eq.DemandConfig().Weights
	if math.Abs(w[0]-w[1]) > 1e-12 || math.Abs(w[1]-w[2]) > 1e-12 {
		t.Errorf("equal weights preset = %v", w)
	}
	for _, f := range []SingleFactor{FactorDeadline, FactorProgress, FactorNeighbors} {
		m, err := NewSingleFactorOnDemand(f, scheme)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		sum := 0.0
		for _, x := range m.DemandConfig().Weights {
			sum += x
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("%v weights sum = %v", f, sum)
		}
	}
	if _, err := NewSingleFactorOnDemand(SingleFactor(9), scheme); err == nil {
		t.Error("unknown factor accepted")
	}
}

func TestSingleFactorString(t *testing.T) {
	if FactorDeadline.String() != "deadline-only" ||
		FactorProgress.String() != "progress-only" ||
		FactorNeighbors.String() != "neighbors-only" {
		t.Error("SingleFactor strings wrong")
	}
	if SingleFactor(9).String() != "SingleFactor(9)" {
		t.Error("unknown factor string wrong")
	}
}

func TestPaperOnDemandUsesAHPWeights(t *testing.T) {
	m, err := NewPaperOnDemand(paperScheme(t))
	if err != nil {
		t.Fatal(err)
	}
	w := m.DemandConfig().Weights
	want := [3]float64{0.648, 0.230, 0.122}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 0.001 {
			t.Errorf("w[%d] = %v, want %v", i, w[i], want[i])
		}
	}
}

func TestNewOnDemandFromAHPWrongOrder(t *testing.T) {
	pm, err := mustMatrix2()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewOnDemandFromAHP(pm, [3]float64{1, 1, 1}, paperScheme(t)); err == nil {
		t.Error("2x2 criteria matrix accepted")
	}
}

// Package incentive implements the reward mechanisms compared in the paper:
// the proposed demand-based dynamic ("on-demand") mechanism, the fixed
// mechanism, and the steered crowdsensing mechanism of Kawajiri et al.
// (UbiComp 2014), plus configuration presets for the paper's ablations.
//
// A Mechanism is consulted by the platform once per sensing round, before
// task publication, and returns the per-measurement reward of every open
// task for that round.
package incentive

import (
	"paydemand/internal/geo"
	"paydemand/internal/task"
)

// TaskView is the platform's per-task observation handed to a mechanism at
// the start of a round: everything the paper's reward rules depend on.
type TaskView struct {
	// ID identifies the task.
	ID task.ID `json:"id"`
	// Location is the task's location (used by location-aware mechanisms).
	Location geo.Point `json:"location"`
	// Deadline is the task's deadline round tau_i.
	Deadline int `json:"deadline"`
	// Required is the number of measurements the task needs (phi_i).
	Required int `json:"required"`
	// Received is the number of measurements received so far (pi_i).
	Received int `json:"received"`
	// Neighbors is the number of mobile users within the neighbor radius R
	// of the task at the start of the round.
	Neighbors int `json:"neighbors"`
}

// Progress returns the completing progress pi/phi, capped at 1.
func (v TaskView) Progress() float64 {
	if v.Required <= 0 {
		return 1
	}
	p := float64(v.Received) / float64(v.Required)
	if p > 1 {
		p = 1
	}
	return p
}

// Mechanism prices sensing tasks round by round.
//
// Implementations may keep per-task state across rounds (the fixed
// mechanism memoizes its initial random draw; steered needs only the view).
// Rewards must return an entry for every view it is given.
type Mechanism interface {
	// Name returns a short identifier used in experiment output
	// ("on-demand", "fixed", "steered").
	Name() string
	// Rewards returns the per-measurement reward of each task for the
	// given round. The views slice is caller-owned scratch that may be
	// reused after the call returns; implementations must not retain it.
	Rewards(round int, views []TaskView) (map[task.ID]float64, error)
}

// Package incentive implements the reward mechanisms compared in the paper
// and its competitors from the surrounding literature: the proposed
// demand-based dynamic ("on-demand") mechanism, the fixed mechanism, the
// steered crowdsensing mechanism of Kawajiri et al. (UbiComp 2014), a
// budget-limited truthful reverse auction, and an IncentMe-style mechanism
// that prices against predicted user mobility — plus configuration presets
// for the paper's ablations.
//
// A Mechanism is consulted by the platform once per sensing round, before
// task publication, and returns the per-measurement reward of every open
// task for that round. Mechanisms declare the inputs they need through a
// Capabilities bitmask; the round engine assembles exactly the requested
// inputs into a RoundInput, so a mechanism that only needs task views
// never pays for bid construction or mobility forecasting.
package incentive

import (
	"strings"

	"paydemand/internal/geo"
	"paydemand/internal/stats"
	"paydemand/internal/task"
)

// TaskView is the platform's per-task observation handed to a mechanism at
// the start of a round: everything the paper's reward rules depend on.
type TaskView struct {
	// ID identifies the task.
	ID task.ID `json:"id"`
	// Location is the task's location (used by location-aware mechanisms).
	Location geo.Point `json:"location"`
	// Deadline is the task's deadline round tau_i.
	Deadline int `json:"deadline"`
	// Required is the number of measurements the task needs (phi_i).
	Required int `json:"required"`
	// Received is the number of measurements received so far (pi_i).
	Received int `json:"received"`
	// Neighbors is the number of mobile users within the neighbor radius R
	// of the task at the start of the round.
	Neighbors int `json:"neighbors"`
}

// Progress returns the completing progress pi/phi, capped at 1.
func (v TaskView) Progress() float64 {
	if v.Required <= 0 {
		return 1
	}
	p := float64(v.Received) / float64(v.Required)
	if p > 1 {
		p = 1
	}
	return p
}

// Capabilities is a bitmask of optional RoundInput fields a mechanism
// consumes. The round engine populates exactly the declared fields, and
// configuration validation rejects setups that cannot supply a declared
// capability, so a missing input is a construction-time error rather than
// a mid-campaign nil dereference.
type Capabilities uint32

const (
	// CapBids requests per-worker claimed costs (RoundInput.Bids).
	CapBids Capabilities = 1 << iota
	// CapBudget requests the campaign budget (RoundInput.Budget).
	CapBudget
	// CapMobility requests a mobility forecast (RoundInput.Mobility).
	CapMobility
	// CapRNG requests the shared seeded stream (RoundInput.RNG).
	CapRNG
)

// capabilityNames lists the bits in declaration order for String.
var capabilityNames = []struct {
	bit  Capabilities
	name string
}{
	{CapBids, "bids"},
	{CapBudget, "budget"},
	{CapMobility, "mobility"},
	{CapRNG, "rng"},
}

// Has reports whether every bit of want is set.
func (c Capabilities) Has(want Capabilities) bool { return c&want == want }

// String renders the set bits as a +-joined list ("bids+budget"), or
// "none" for the empty mask.
func (c Capabilities) String() string {
	if c == 0 {
		return "none"
	}
	var b strings.Builder
	for _, n := range capabilityNames {
		if !c.Has(n.bit) {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte('+')
		}
		b.WriteString(n.name)
	}
	return b.String()
}

// Bid is one worker's claimed cost for participating in the round. Worker
// is the worker's index into the round's user-location slice (a stable,
// deterministic identifier within the round); Cost is the claimed cost in
// the same currency as rewards.
type Bid struct {
	// Worker indexes the round's user-location slice.
	Worker int
	// Cost is the worker's claimed participation cost.
	Cost float64
}

// ForecastProvider predicts how many users will neighbor a task as rounds
// pass. Implementations must be deterministic: the same (current, horizon)
// arguments must yield the same value every call, or byte-identity across
// shard and worker counts breaks.
type ForecastProvider interface {
	// Name returns a short identifier for experiment output.
	Name() string
	// ExpectedNeighbors returns the expected number of users within the
	// neighbor radius of a task horizon rounds from now, given its
	// current neighbor count.
	ExpectedNeighbors(current int, horizon int) float64
}

// RoundInput carries everything a mechanism may consume for one round.
// Round and Views are always populated; the capability fields are set only
// when the mechanism's Requires() mask asks for them, and are zero/nil
// otherwise. The struct and its slices are caller-owned scratch reused
// between rounds; mechanisms must not retain them after the call returns.
type RoundInput struct {
	// Round is the current sensing round k (1-based).
	Round int
	// Views holds one entry per open task, in board order.
	Views []TaskView
	// Bids holds per-worker claimed costs, one per user, in user order
	// (CapBids).
	Bids []Bid
	// Budget is the campaign budget B (CapBudget).
	Budget float64
	// Mobility forecasts future neighbor counts (CapMobility).
	Mobility ForecastProvider
	// RNG is the mechanism's seeded stream (CapRNG). Draws consume the
	// stream, so the call order over views is part of the byte-identity
	// contract.
	RNG *stats.RNG
}

// Mechanism prices sensing tasks round by round.
//
// Implementations may keep per-task state across rounds (the fixed
// mechanism memoizes its initial random draw) and per-call scratch, so a
// Mechanism value must not be shared between concurrently running engines.
//
// RewardsInto must write an entry into out for every view it prices; a
// mechanism may deliberately price nothing (an auction whose budget
// affords no worker) by leaving out untouched. Rewards is the allocating
// convenience form of RewardsInto.
type Mechanism interface {
	// Name returns a short identifier used in experiment output
	// ("on-demand", "fixed", "steered", "auction", "incentme").
	Name() string
	// Requires declares which optional RoundInput fields the mechanism
	// consumes. The engine populates exactly these.
	Requires() Capabilities
	// Rewards returns the per-measurement reward of each task for the
	// round described by in. The returned map is freshly allocated and
	// owned by the caller.
	Rewards(in *RoundInput) (map[task.ID]float64, error)
	// RewardsInto writes the per-measurement rewards into out, which the
	// caller has cleared; it must not delete foreign keys or retain out.
	// This is the hot-path form: a steady-state call allocates nothing.
	RewardsInto(in *RoundInput, out map[task.ID]float64) error
}

// allocRewards adapts RewardsInto into the allocating Rewards form; every
// mechanism's Rewards is this one-liner.
func allocRewards(m Mechanism, in *RoundInput) (map[task.ID]float64, error) {
	out := make(map[task.ID]float64, len(in.Views))
	if err := m.RewardsInto(in, out); err != nil {
		return nil, err
	}
	return out, nil
}

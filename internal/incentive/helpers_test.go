package incentive

import "paydemand/internal/ahp"

// mustMatrix2 builds a 2x2 comparison matrix for negative-path tests.
func mustMatrix2() (*ahp.PairwiseMatrix, error) {
	return ahp.NewPairwiseMatrix([][]float64{{1, 2}, {0.5, 1}})
}

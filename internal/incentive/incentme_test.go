package incentive

import (
	"math"
	"testing"

	"paydemand/internal/task"
)

// flatForecast is a test double returning one fixed expected-neighbor
// count regardless of horizon.
type flatForecast struct{ supply float64 }

func (f flatForecast) Name() string                       { return "flat" }
func (f flatForecast) ExpectedNeighbors(int, int) float64 { return f.supply }

// drainForecast halves the current count per horizon round, modeling a
// neighborhood that empties out.
type drainForecast struct{}

func (drainForecast) Name() string { return "drain" }

func (drainForecast) ExpectedNeighbors(current, horizon int) float64 {
	return float64(current) * math.Pow(0.5, float64(horizon))
}

func TestIncentMeBasics(t *testing.T) {
	m, err := NewIncentMe(paperScheme(t))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "incentme" {
		t.Errorf("Name = %q", m.Name())
	}
	if m.Requires() != CapMobility {
		t.Errorf("Requires = %v", m.Requires())
	}
	if m.Scheme() != paperScheme(t) {
		t.Error("Scheme accessor wrong")
	}
	if _, err := NewIncentMe(RewardScheme{}); err == nil {
		t.Error("invalid scheme accepted")
	}
}

func TestIncentMeRequiresForecast(t *testing.T) {
	m, err := NewIncentMe(paperScheme(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Rewards(&RoundInput{Round: 1, Views: testViews()}); err == nil {
		t.Error("nil forecast accepted")
	}
}

func TestIncentMeScarcityDirection(t *testing.T) {
	scheme := paperScheme(t)
	m, err := NewIncentMe(scheme)
	if err != nil {
		t.Fatal(err)
	}
	// Same deficit, same current neighbors — but task 2's neighborhood is
	// forecast to drain (deadline far away under a draining model), so it
	// must be priced at least as high as the short-horizon task. With a
	// flat forecast both price identically.
	views := []TaskView{
		{ID: 1, Deadline: 2, Required: 20, Received: 0, Neighbors: 8},
		{ID: 2, Deadline: 12, Required: 20, Received: 0, Neighbors: 8},
	}
	flat, err := m.Rewards(&RoundInput{Round: 1, Views: views, Mobility: flatForecast{supply: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if flat[1] != flat[2] {
		t.Errorf("flat forecast prices differ: %v vs %v", flat[1], flat[2])
	}
	drained, err := m.Rewards(&RoundInput{Round: 1, Views: views, Mobility: drainForecast{}})
	if err != nil {
		t.Fatal(err)
	}
	if drained[2] < drained[1] {
		t.Errorf("draining long-horizon task priced %v below short-horizon %v", drained[2], drained[1])
	}
	if drained[2] != scheme.MaxReward() {
		t.Errorf("scarcest task = %v, want the max reward %v", drained[2], scheme.MaxReward())
	}
	// Rewards stay on the scheme's ladder.
	for id, r := range flat {
		if r < scheme.R0-1e-12 || r > scheme.MaxReward()+1e-12 {
			t.Errorf("task %d reward %v outside scheme range", id, r)
		}
	}
}

func TestIncentMeCompletedTasksFloor(t *testing.T) {
	scheme := paperScheme(t)
	m, err := NewIncentMe(scheme)
	if err != nil {
		t.Fatal(err)
	}
	// All tasks overfilled: zero scarcity everywhere, everything at the
	// floor reward.
	views := []TaskView{
		{ID: 1, Deadline: 10, Required: 5, Received: 9},
		{ID: 2, Deadline: 10, Required: 5, Received: 5},
	}
	rewards, err := m.Rewards(&RoundInput{Round: 1, Views: views, Mobility: flatForecast{supply: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if rewards[1] != scheme.R0 || rewards[2] != scheme.R0 {
		t.Errorf("zero-scarcity rewards = %v, want floor %v", rewards, scheme.R0)
	}
}

func TestIncentMeRejectsBadForecast(t *testing.T) {
	m, err := NewIncentMe(paperScheme(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := m.Rewards(&RoundInput{Round: 1, Views: testViews(), Mobility: flatForecast{supply: bad}}); err == nil {
			t.Errorf("forecast value %v accepted", bad)
		}
	}
}

func TestIncentMeZeroAllocSteadyState(t *testing.T) {
	m, err := NewIncentMe(paperScheme(t))
	if err != nil {
		t.Fatal(err)
	}
	views := testViews()
	in := &RoundInput{Round: 1, Views: views, Mobility: flatForecast{supply: 4}}
	out := make(map[task.ID]float64, len(views))
	if err := m.RewardsInto(in, out); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		clear(out)
		if err := m.RewardsInto(in, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state RewardsInto allocates %v objects/op, want 0", allocs)
	}
}

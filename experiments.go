package paydemand

import (
	"io"

	"paydemand/internal/experiments"
)

// Experiment harness: regenerate the paper's tables and figures.
type (
	// ExperimentOptions configures an experiment run; the zero value
	// reproduces the paper's setup (100 trials, users 40..140).
	ExperimentOptions = experiments.Options
	// Figure is a reproduced table or figure.
	Figure = experiments.Figure
	// FigureSeries is one plotted line.
	FigureSeries = experiments.Series
)

// ExperimentIDs lists the reproducible figures ("fig5a" .. "fig9b").
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment regenerates one figure.
func RunExperiment(id string, opts ExperimentOptions) (Figure, error) {
	return experiments.Run(id, opts)
}

// RenderFigureTable writes the figure as an aligned ASCII table.
func RenderFigureTable(w io.Writer, f Figure) error {
	return experiments.RenderTable(w, f)
}

// RenderFigurePlot writes a coarse ASCII plot of the figure.
func RenderFigurePlot(w io.Writer, f Figure, width, height int) error {
	return experiments.RenderPlot(w, f, width, height)
}

// RenderFigureCSV writes the figure in long-form CSV.
func RenderFigureCSV(w io.Writer, f Figure) error {
	return experiments.RenderCSV(w, f)
}

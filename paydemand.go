// Package paydemand is the public API of the Pay On-Demand library, a full
// implementation of "Pay On-demand: Dynamic Incentive and Task Selection
// for Location-dependent Mobile Crowdsensing Systems" (Wang et al.,
// ICDCS 2018).
//
// The library provides:
//
//   - the demand-based dynamic incentive mechanism (demand indicator,
//     AHP-derived criteria weights, demand levels, budget-constrained
//     reward schemes) plus the fixed and steered baselines;
//   - the distributed task selection solvers (optimal bitmask DP, greedy,
//     2-opt, and a size-adaptive auto solver);
//   - a deterministic round-based simulator of the full platform/user
//     loop, with workload generation and the paper's evaluation metrics;
//   - an experiment harness regenerating every figure in the paper;
//   - an HTTP platform server and worker client for running the WST
//     protocol over a real network.
//
// Quick start:
//
//	res, err := paydemand.Run(paydemand.Config{}, 1)   // paper defaults
//	fmt.Println(res.Coverage, res.OverallCompleteness)
//
// The type surface is organized as aliases of the implementation packages
// so that the whole library is usable from this single import.
package paydemand

import (
	"io"

	"paydemand/internal/metrics"
	"paydemand/internal/sim"
	"paydemand/internal/workload"
)

// Config configures a simulation; the zero value reproduces the paper's
// evaluation defaults (3000 m square, 20 tasks x 20 measurements,
// deadlines U{5..15}, budget $1000, 5 demand levels, lambda $0.5).
type Config = sim.Config

// WorkloadConfig configures scenario generation.
type WorkloadConfig = workload.Config

// Scenario is a generated workload instance.
type Scenario = workload.Scenario

// Placement selects a spatial distribution for tasks or users.
type Placement = workload.Placement

// Spatial placements.
const (
	PlacementUniform   = workload.PlacementUniform
	PlacementClustered = workload.PlacementClustered
	PlacementGrid      = workload.PlacementGrid
)

// MechanismKind selects the incentive mechanism under test.
type MechanismKind = sim.MechanismKind

// The incentive mechanisms.
const (
	MechanismOnDemand      = sim.MechanismOnDemand
	MechanismFixed         = sim.MechanismFixed
	MechanismSteered       = sim.MechanismSteered
	MechanismSteeredRaw    = sim.MechanismSteeredRaw
	MechanismEqualWeights  = sim.MechanismEqualWeights
	MechanismDeadlineOnly  = sim.MechanismDeadlineOnly
	MechanismProgressOnly  = sim.MechanismProgressOnly
	MechanismNeighborsOnly = sim.MechanismNeighborsOnly
)

// AlgorithmKind selects the distributed task selection algorithm.
type AlgorithmKind = sim.AlgorithmKind

// The task selection algorithms.
const (
	AlgorithmDP     = sim.AlgorithmDP
	AlgorithmGreedy = sim.AlgorithmGreedy
	AlgorithmAuto   = sim.AlgorithmAuto
	AlgorithmTwoOpt = sim.AlgorithmTwoOpt
	AlgorithmBeam   = sim.AlgorithmBeam
)

// MobilityKind selects the between-round user movement model.
type MobilityKind = sim.MobilityKind

// The mobility models.
const (
	MobilityStationary     = sim.MobilityStationary
	MobilityRandomWaypoint = sim.MobilityRandomWaypoint
	MobilityLevyWalk       = sim.MobilityLevyWalk
)

// Simulation is one configured run over one scenario.
type Simulation = sim.Simulation

// Observer receives per-round simulation events.
type Observer = sim.Observer

// BaseObserver is a no-op Observer for embedding.
type BaseObserver = sim.BaseObserver

// TraceObserver streams simulation events as JSONL for offline analysis.
type TraceObserver = sim.TraceObserver

// NewTraceObserver returns an Observer that writes JSONL trace events to w.
func NewTraceObserver(w io.Writer) *TraceObserver {
	return sim.NewTraceObserver(w)
}

// TrialResult is the outcome of one simulation run.
type TrialResult = metrics.TrialResult

// RoundStats is the platform's view of one sensing round.
type RoundStats = metrics.RoundStats

// Aggregator averages TrialResults over repeated trials.
type Aggregator = metrics.Aggregator

// Summary is the across-trial mean of every final metric.
type Summary = metrics.Summary

// NewSimulation generates a scenario from cfg.Workload with the given seed
// and prepares a simulation. The same (cfg, seed) pair always produces the
// same result.
func NewSimulation(cfg Config, seed int64) (*Simulation, error) {
	return sim.New(cfg, seed)
}

// NewSimulationFromScenario prepares a simulation over a caller-supplied
// scenario.
func NewSimulationFromScenario(cfg Config, sc Scenario, seed int64) (*Simulation, error) {
	return sim.NewFromScenario(cfg, sc, seed)
}

// Run builds and runs a simulation in one call.
func Run(cfg Config, seed int64) (TrialResult, error) {
	return sim.Run(cfg, seed)
}

// GenerateScenario draws a workload scenario from the configuration.
func GenerateScenario(seed int64, cfg WorkloadConfig) (Scenario, error) {
	return workload.Generate(newRNG(seed), cfg)
}

package paydemand_test

import (
	"fmt"
	"testing"

	"paydemand"

	"paydemand/internal/geo"
	"paydemand/internal/metrics"
	"paydemand/internal/selection"
	"paydemand/internal/sim"
	"paydemand/internal/stats"
	"paydemand/internal/workload"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: the AHP
// weighting (vs equal or single-factor weights), the demand-level
// granularity N, the per-round time budget, and the selection algorithm.
// Each reports the campaign metrics affected by the choice.

// ablationTrials averages a configuration over a few seeds.
const ablationTrials = 10

func runAblation(b *testing.B, cfg paydemand.Config) metrics.Summary {
	b.Helper()
	var agg paydemand.Aggregator
	for trial := 0; trial < ablationTrials; trial++ {
		res, err := paydemand.Run(cfg, int64(trial)+100)
		if err != nil {
			b.Fatal(err)
		}
		agg.Add(res)
	}
	return agg.Summary()
}

// BenchmarkAblationWeights compares the AHP-derived demand weights against
// the no-AHP (equal weights) and single-factor ablations.
func BenchmarkAblationWeights(b *testing.B) {
	variants := []paydemand.MechanismKind{
		paydemand.MechanismOnDemand,
		paydemand.MechanismEqualWeights,
		paydemand.MechanismDeadlineOnly,
		paydemand.MechanismProgressOnly,
		paydemand.MechanismNeighborsOnly,
	}
	for _, mech := range variants {
		b.Run(mech.String(), func(b *testing.B) {
			var s metrics.Summary
			for i := 0; i < b.N; i++ {
				s = runAblation(b, paydemand.Config{Mechanism: mech})
			}
			b.ReportMetric(s.OverallCompleteness*100, "completeness%")
			b.ReportMetric(s.VarianceMeasurements, "variance")
			b.ReportMetric(s.AvgRewardPerMeasurement, "$/meas")
		})
	}
}

// BenchmarkAblationLevels sweeps the demand-level granularity N of
// Table III. More levels give finer price discrimination; N=1 collapses
// on-demand into a flat-rate mechanism.
func BenchmarkAblationLevels(b *testing.B) {
	for _, n := range []int{1, 2, 5, 10, 20} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			cfg := paydemand.Config{DemandLevels: n}
			// Keep the budget constraint satisfiable: with B=1000 and
			// Σφ=400, Eq. 9 needs λ(N-1) < 2.5.
			cfg.RewardLambda = 2.0 / float64(n)
			var s metrics.Summary
			for i := 0; i < b.N; i++ {
				s = runAblation(b, cfg)
			}
			b.ReportMetric(s.OverallCompleteness*100, "completeness%")
			b.ReportMetric(s.AvgRewardPerMeasurement, "$/meas")
		})
	}
}

// BenchmarkAblationTimeBudget sweeps the per-round user time budget, the
// parameter the paper never states (DESIGN.md assumption 2).
func BenchmarkAblationTimeBudget(b *testing.B) {
	for _, budget := range []float64{150, 300, 600, 1200} {
		b.Run(fmt.Sprintf("B=%vs", budget), func(b *testing.B) {
			var s metrics.Summary
			for i := 0; i < b.N; i++ {
				s = runAblation(b, paydemand.Config{UserTimeBudget: budget})
			}
			b.ReportMetric(s.OverallCompleteness*100, "completeness%")
			b.ReportMetric(s.AvgMeasurements, "avg_meas")
		})
	}
}

// BenchmarkAblationSelection compares the selection algorithms inside the
// full campaign (profit and runtime tradeoff of Section V).
func BenchmarkAblationSelection(b *testing.B) {
	for _, alg := range []paydemand.AlgorithmKind{
		paydemand.AlgorithmDP,
		paydemand.AlgorithmGreedy,
		paydemand.AlgorithmTwoOpt,
		paydemand.AlgorithmAuto,
	} {
		b.Run(alg.String(), func(b *testing.B) {
			var s metrics.Summary
			for i := 0; i < b.N; i++ {
				s = runAblation(b, paydemand.Config{Algorithm: alg})
			}
			b.ReportMetric(s.AvgUserProfit, "avg_profit")
			b.ReportMetric(s.OverallCompleteness*100, "completeness%")
		})
	}
}

// BenchmarkAblationPlacement compares uniform, clustered, and grid
// user/task placements; clustering stresses the neighbor-count factor.
func BenchmarkAblationPlacement(b *testing.B) {
	placements := []workload.Placement{
		workload.PlacementUniform,
		workload.PlacementClustered,
		workload.PlacementGrid,
	}
	for _, p := range placements {
		b.Run(p.String(), func(b *testing.B) {
			cfg := paydemand.Config{}
			cfg.Workload.UserPlacement = p
			var s metrics.Summary
			for i := 0; i < b.N; i++ {
				s = runAblation(b, cfg)
			}
			b.ReportMetric(s.Coverage*100, "coverage%")
			b.ReportMetric(s.VarianceMeasurements, "variance")
		})
	}
}

// BenchmarkGridIndex measures the spatial index against the brute-force
// neighbor count at the simulator's round scale.
func BenchmarkGridIndex(b *testing.B) {
	rng := stats.NewRNG(1)
	area := paydemand.Square(3000)
	locs := make([]paydemand.Point, 1000)
	for i := range locs {
		locs[i] = paydemand.Pt(rng.Uniform(0, 3000), rng.Uniform(0, 3000))
	}
	b.Run("build+query20", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			grid, err := newGrid(area, 500, locs)
			if err != nil {
				b.Fatal(err)
			}
			for q := 0; q < 20; q++ {
				grid.CountWithin(locs[q], 500)
			}
		}
	})
}

// BenchmarkObserverOverhead measures the cost the observer hook adds to a
// campaign.
func BenchmarkObserverOverhead(b *testing.B) {
	cfg := paydemand.Config{}
	cfg.Workload.NumUsers = 40
	b.Run("nil-observer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := sim.New(cfg, int64(i))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Run(nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("counting-observer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := sim.New(cfg, int64(i))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Run(&countingObserver{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// countingObserver counts UserPlanned events.
type countingObserver struct {
	sim.BaseObserver
	n int
}

func (c *countingObserver) UserPlanned(int, int, selection.Problem, selection.Plan) { c.n++ }

// newGrid builds the spatial index used by the reward update.
func newGrid(area paydemand.Rect, cell float64, pts []paydemand.Point) (*geo.GridIndex, error) {
	return geo.NewGridIndex(area, cell, pts)
}

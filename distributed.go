package paydemand

import (
	"context"
	"net/http"

	"paydemand/internal/aggregate"
	"paydemand/internal/client"
	"paydemand/internal/reputation"
	"paydemand/internal/server"
	"paydemand/internal/wire"
)

// Distributed deployment: the platform HTTP server and the worker client
// that speak the WST protocol of internal/wire.
type (
	// Platform is the crowdsensing platform HTTP service; it implements
	// http.Handler.
	Platform = server.Platform
	// PlatformConfig parameterizes the platform.
	PlatformConfig = server.Config
	// Client calls a platform's HTTP API.
	Client = client.Client
	// Worker runs the full distributed WST loop against a platform.
	Worker = client.Worker
	// WorkerConfig parameterizes a Worker.
	WorkerConfig = client.WorkerConfig
	// Sensor produces the value a worker uploads when performing a task.
	Sensor = client.Sensor
	// RoundInfo is the platform's published state for one round.
	RoundInfo = wire.RoundInfo
	// SubmitRequest uploads a worker's measurements.
	SubmitRequest = wire.SubmitRequest
	// Measurement is one uploaded sensed value.
	Measurement = wire.Measurement
	// StatusResponse is the platform's metric snapshot.
	StatusResponse = wire.StatusResponse
	// AggregationConfig selects how the platform reduces a task's
	// measurements into one estimate.
	AggregationConfig = aggregate.Config
	// AggregateEstimate is an aggregated task value with its confidence
	// interval.
	AggregateEstimate = aggregate.Estimate
	// AggregationMethod selects an estimator.
	AggregationMethod = aggregate.Method
	// ReputationTracker maintains per-worker sensing-quality scores.
	ReputationTracker = reputation.Tracker
	// ReputationContribution pairs a contributor with its reading.
	ReputationContribution = reputation.Contribution
	// ClientOption configures a Client (codec, transport tuning).
	ClientOption = client.Option
	// ClientCodec selects the wire encoding of the hot endpoints.
	ClientCodec = client.Codec
)

// Wire codecs for the hot endpoints.
const (
	// CodecJSON is the default JSON protocol.
	CodecJSON = client.CodecJSON
	// CodecTLV is the compact binary protocol (internal/wire/binary).
	CodecTLV = client.CodecTLV
)

// ClientWithCodec selects the wire codec for the hot endpoints.
func ClientWithCodec(c ClientCodec) ClientOption { return client.WithCodec(c) }

// NewReputationTracker builds a tracker; zero arguments select the
// defaults (alpha 0.2, initial score 0.5).
func NewReputationTracker(alpha, initial float64) (*ReputationTracker, error) {
	return reputation.NewTracker(alpha, initial)
}

// Aggregation estimators.
const (
	AggregateMean        = aggregate.Mean
	AggregateMedian      = aggregate.Median
	AggregateTrimmedMean = aggregate.TrimmedMean
	AggregateRobustMean  = aggregate.RobustMean
)

// AggregateValues reduces measurements with the configured estimator.
func AggregateValues(cfg AggregationConfig, values []float64) (AggregateEstimate, error) {
	return aggregate.Aggregate(cfg, values)
}

// NewPlatform builds the platform HTTP service.
func NewPlatform(cfg PlatformConfig) (*Platform, error) {
	return server.New(cfg)
}

// NewClient creates a client for the platform at baseURL. httpClient may
// be nil for a sensible default. Options select the wire codec and tune
// the default transport (see ClientWithCodec).
func NewClient(baseURL string, httpClient *http.Client, opts ...ClientOption) *Client {
	return client.New(baseURL, httpClient, opts...)
}

// NewWorker registers a worker with the platform and returns its runner.
func NewWorker(ctx context.Context, c *Client, cfg WorkerConfig) (*Worker, error) {
	return client.NewWorker(ctx, c, cfg)
}

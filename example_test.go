package paydemand_test

import (
	"fmt"

	"paydemand"
)

// ExampleRun runs the paper's default campaign and prints campaign-level
// facts that are deterministic under the seed.
func ExampleRun() {
	res, err := paydemand.Run(paydemand.Config{}, 42)
	if err != nil {
		panic(err)
	}
	fmt.Println("mechanism:", res.Mechanism)
	fmt.Println("tasks:", res.Tasks)
	fmt.Printf("coverage: %.0f%%\n", res.Coverage*100)
	// Output:
	// mechanism: on-demand
	// tasks: 20
	// coverage: 100%
}

// ExamplePaperAHPMatrix derives the paper's Table II weight vector from
// the Table I judgments.
func ExamplePaperAHPMatrix() {
	pm := paydemand.PaperAHPMatrix()
	w := pm.PaperWeights()
	fmt.Printf("w1 = %.3f, w2 = %.3f, w3 = %.3f\n", w[0], w[1], w[2])
	// Output:
	// w1 = 0.648, w2 = 0.230, w3 = 0.122
}

// ExampleNewRewardScheme shows Eq. 9 with the paper's evaluation
// constants: budget $1000, 400 required measurements, lambda $0.5,
// 5 demand levels.
func ExampleNewRewardScheme() {
	scheme, err := paydemand.NewRewardScheme(1000, 400, 0.5, 5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("r0 = $%.2f\n", scheme.R0)
	for lvl := 1; lvl <= 5; lvl++ {
		fmt.Printf("level %d pays $%.2f\n", lvl, scheme.Reward(lvl))
	}
	// Output:
	// r0 = $0.50
	// level 1 pays $0.50
	// level 2 pays $1.00
	// level 3 pays $1.50
	// level 4 pays $2.00
	// level 5 pays $2.50
}

// ExampleDPSelector solves a small task selection instance optimally.
func ExampleDPSelector() {
	var dp paydemand.DPSelector
	plan, err := dp.Select(paydemand.SelectionProblem{
		Start:        paydemand.Pt(0, 0),
		MaxDistance:  1000,
		CostPerMeter: 0.002,
		Candidates: []paydemand.SelectionCandidate{
			{ID: 1, Location: paydemand.Pt(100, 0), Reward: 2},
			{ID: 2, Location: paydemand.Pt(200, 0), Reward: 2},
			{ID: 3, Location: paydemand.Pt(0, 4000), Reward: 9}, // unreachable
		},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("order:", plan.Order)
	fmt.Printf("profit: $%.2f\n", plan.Profit)
	// Output:
	// order: [1 2]
	// profit: $3.60
}

// ExampleGreedySelector shows the heuristic on the same instance.
func ExampleGreedySelector() {
	var greedy paydemand.GreedySelector
	plan, err := greedy.Select(paydemand.SelectionProblem{
		Start:        paydemand.Pt(0, 0),
		MaxDistance:  1000,
		CostPerMeter: 0.002,
		Candidates: []paydemand.SelectionCandidate{
			{ID: 1, Location: paydemand.Pt(100, 0), Reward: 2},
			{ID: 2, Location: paydemand.Pt(200, 0), Reward: 2},
		},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("order:", plan.Order)
	// Output:
	// order: [1 2]
}

// ExampleNewOnDemandMechanism prices two tasks whose demands differ: the
// starving task (deadline imminent, no progress, no neighbors) earns a
// higher demand level than the nearly-finished one.
func ExampleNewOnDemandMechanism() {
	scheme, _ := paydemand.NewRewardScheme(1000, 400, 0.5, 5)
	mech, _ := paydemand.NewOnDemandMechanism(scheme)
	rewards, err := mech.Rewards(&paydemand.RoundInput{Round: 2, Views: []paydemand.TaskView{
		{ID: 1, Deadline: 2, Required: 20, Received: 0, Neighbors: 0},
		{ID: 2, Deadline: 15, Required: 20, Received: 18, Neighbors: 9},
	}})
	if err != nil {
		panic(err)
	}
	fmt.Printf("starving task: $%.2f\n", rewards[1])
	fmt.Printf("satisfied task: $%.2f\n", rewards[2])
	// Output:
	// starving task: $2.50
	// satisfied task: $0.50
}

// ExampleAggregateValues rejects a faulty sensor's reading before
// estimating a task's value.
func ExampleAggregateValues() {
	est, err := paydemand.AggregateValues(
		paydemand.AggregationConfig{Method: paydemand.AggregateRobustMean},
		[]float64{61.0, 60.5, 61.5, 59.9, 250.0}, // one broken microphone
	)
	if err != nil {
		panic(err)
	}
	fmt.Printf("estimate %.2f dBA from %d readings (%d rejected)\n",
		est.Value, est.N, est.Rejected)
	// Output:
	// estimate 60.73 dBA from 4 readings (1 rejected)
}

// ExampleGenerateScenario builds a reproducible workload.
func ExampleGenerateScenario() {
	sc, err := paydemand.GenerateScenario(7, paydemand.WorkloadConfig{
		NumTasks:      4,
		NumUsers:      2,
		TaskPlacement: paydemand.PlacementGrid,
	})
	if err != nil {
		panic(err)
	}
	for _, t := range sc.Tasks {
		fmt.Printf("task %d at %v\n", t.ID, t.Location)
	}
	// Output:
	// task 1 at (750.00, 750.00)
	// task 2 at (2250.00, 750.00)
	// task 3 at (750.00, 2250.00)
	// task 4 at (2250.00, 2250.00)
}

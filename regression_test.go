package paydemand_test

import (
	"math"
	"testing"

	"paydemand"
)

// TestCampaignRegression pins the exact metrics of one deterministic
// paper-default campaign per mechanism. Any change to the round loop, the
// demand math, the solvers, or the RNG plumbing shows up here as a diff —
// update the table deliberately when the change is intended.
func TestCampaignRegression(t *testing.T) {
	tests := []struct {
		mechanism    paydemand.MechanismKind
		measurements int
		coverage     float64
		rewardPaid   float64
	}{
		{paydemand.MechanismOnDemand, 397, 1.0, 471.0},
		{paydemand.MechanismFixed, 343, 1.0, 544.0},
		{paydemand.MechanismSteered, 320, 1.0, 746.6185118863771},
	}
	for _, tt := range tests {
		t.Run(tt.mechanism.String(), func(t *testing.T) {
			res, err := paydemand.Run(paydemand.Config{Mechanism: tt.mechanism}, 12345)
			if err != nil {
				t.Fatal(err)
			}
			if res.TotalMeasurements != tt.measurements {
				t.Errorf("measurements = %d, want %d", res.TotalMeasurements, tt.measurements)
			}
			if res.Coverage != tt.coverage {
				t.Errorf("coverage = %v, want %v", res.Coverage, tt.coverage)
			}
			if math.Abs(res.TotalRewardPaid-tt.rewardPaid) > 1e-6 {
				t.Errorf("reward paid = %v, want %v", res.TotalRewardPaid, tt.rewardPaid)
			}
		})
	}
}

// TestSATRegression pins the SAT baseline the same way.
func TestSATRegression(t *testing.T) {
	res, err := paydemand.RunSAT(paydemand.SATConfig{}, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mechanism != "sat-auction" {
		t.Errorf("mechanism = %q", res.Mechanism)
	}
	if res.TotalMeasurements == 0 || res.Coverage == 0 {
		t.Errorf("degenerate SAT run: %+v", res)
	}
}

// TestPublicSATAPI exercises the facade wrappers.
func TestPublicSATAPI(t *testing.T) {
	s, err := paydemand.NewSATSimulation(paydemand.SATConfig{
		Workload: paydemand.WorkloadConfig{NumTasks: 4, NumUsers: 10, Required: 2},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks != 4 {
		t.Errorf("tasks = %d", res.Tasks)
	}
}

module paydemand

go 1.22

package paydemand_test

import (
	"context"
	"io"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"paydemand"
)

// TestPublicDistributedAPI drives a full distributed campaign through the
// public facade only: platform, client, worker, estimates, reputation,
// and snapshot round trip.
func TestPublicDistributedAPI(t *testing.T) {
	scheme, err := paydemand.NewRewardScheme(300, 4, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	mech, err := paydemand.NewOnDemandMechanism(scheme)
	if err != nil {
		t.Fatal(err)
	}
	tracker, err := paydemand.NewReputationTracker(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	platform, err := paydemand.NewPlatform(paydemand.PlatformConfig{
		Tasks: []paydemand.Task{
			{ID: 1, Location: paydemand.Pt(400, 400), Deadline: 4, Required: 2},
			{ID: 2, Location: paydemand.Pt(700, 500), Deadline: 4, Required: 2},
		},
		Mechanism:      mech,
		Area:           paydemand.Square(3000),
		NeighborRadius: 500,
		Reputation:     tracker,
		Logger:         slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(platform)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c := paydemand.NewClient(srv.URL, srv.Client())

	for i := 0; i < 2; i++ {
		w, err := paydemand.NewWorker(ctx, c, paydemand.WorkerConfig{
			Start:        paydemand.Pt(float64(300+i*100), 400),
			Sensor:       func(_ int64, loc paydemand.Point) float64 { return loc.X / 10 },
			PollInterval: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Step(ctx); err != nil {
			t.Fatal(err)
		}
	}

	status, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if status.TotalMeasurements != 4 {
		t.Fatalf("measurements = %d, want 4", status.TotalMeasurements)
	}
	est, err := c.Estimate(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if est.Value != 40 {
		t.Errorf("estimate = %v, want 40 (x/10 at x=400)", est.Value)
	}
	rep, err := c.Reputation(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Observations == 0 {
		t.Error("reputation never observed")
	}

	// Snapshot through the facade.
	var sb strings.Builder
	if err := platform.WriteSnapshot(&sb); err != nil {
		t.Fatal(err)
	}
	snap, err := paydemand.ReadPlatformSnapshot(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Round != 1 || len(snap.Workers) != 2 {
		t.Errorf("snapshot = round %d, %d workers", snap.Round, len(snap.Workers))
	}
}

package paydemand_test

import (
	"math"
	"strings"
	"testing"

	"paydemand"
)

// TestQuickstart exercises the README's quick-start path through the
// public API only.
func TestQuickstart(t *testing.T) {
	res, err := paydemand.Run(paydemand.Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Users != 100 || res.Tasks != 20 {
		t.Errorf("paper defaults: %d users, %d tasks", res.Users, res.Tasks)
	}
	if res.Coverage <= 0.9 {
		t.Errorf("on-demand coverage = %v, expected near 1", res.Coverage)
	}
}

func TestPublicSelectionAPI(t *testing.T) {
	problem := paydemand.SelectionProblem{
		Start:        paydemand.Pt(0, 0),
		MaxDistance:  1000,
		CostPerMeter: 0.002,
		Candidates: []paydemand.SelectionCandidate{
			{ID: 1, Location: paydemand.Pt(100, 0), Reward: 2},
			{ID: 2, Location: paydemand.Pt(300, 0), Reward: 1},
		},
	}
	var dp paydemand.DPSelector
	plan, err := dp.Select(problem)
	if err != nil {
		t.Fatal(err)
	}
	var greedy paydemand.GreedySelector
	gplan, err := greedy.Select(problem)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Profit < gplan.Profit {
		t.Errorf("dp profit %v < greedy %v", plan.Profit, gplan.Profit)
	}
}

func TestPublicIncentiveAPI(t *testing.T) {
	scheme, err := paydemand.NewRewardScheme(1000, 400, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if scheme.R0 != 0.5 {
		t.Errorf("r0 = %v, want 0.5 (paper Eq. 9)", scheme.R0)
	}
	mech, err := paydemand.NewOnDemandMechanism(scheme)
	if err != nil {
		t.Fatal(err)
	}
	rewards, err := mech.Rewards(&paydemand.RoundInput{Round: 1, Views: []paydemand.TaskView{
		{ID: 1, Deadline: 10, Required: 20},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rewards) != 1 {
		t.Fatalf("rewards = %v", rewards)
	}
	fixed, err := paydemand.NewFixedMechanism(scheme)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Name() != "fixed" {
		t.Error("fixed name wrong")
	}
	if !fixed.Requires().Has(paydemand.CapRNG) {
		t.Error("fixed does not declare the rng capability")
	}
	fr, err := fixed.Rewards(&paydemand.RoundInput{
		Round: 1,
		Views: []paydemand.TaskView{{ID: 1, Deadline: 10, Required: 20}},
		RNG:   paydemand.NewMechanismRNG(42),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fr) != 1 {
		t.Fatalf("fixed rewards = %v", fr)
	}
	auction := paydemand.NewAuctionMechanism()
	if auction.Requires() != paydemand.CapBids|paydemand.CapBudget {
		t.Errorf("auction capabilities = %v", auction.Requires())
	}
	ar, err := auction.Rewards(&paydemand.RoundInput{
		Round:  1,
		Views:  []paydemand.TaskView{{ID: 1, Deadline: 10, Required: 20}},
		Bids:   []paydemand.Bid{{Worker: 0, Cost: 2}, {Worker: 1, Cost: 9}},
		Budget: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Budget 10 affords only the cheap bid (the 9-bid exceeds 10/2), and
	// the winner's critical payment is capped by the losing bid.
	if ar[1] != 9 {
		t.Errorf("auction reward = %v, want 9", ar[1])
	}
	incentme, err := paydemand.NewIncentMeMechanism(scheme)
	if err != nil {
		t.Fatal(err)
	}
	if !incentme.Requires().Has(paydemand.CapMobility) {
		t.Error("incentme does not declare the mobility capability")
	}
	steered := paydemand.NewSteeredMechanism()
	if got := steered.RewardAt(0); math.Abs(got-25) > 1e-9 {
		t.Errorf("steered peak = %v", got)
	}
	scaled, err := paydemand.NewBudgetScaledSteeredMechanism(2.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := scaled.RewardAt(0); math.Abs(got-2.5) > 1e-9 {
		t.Errorf("scaled steered peak = %v", got)
	}
}

func TestPublicAHPAPI(t *testing.T) {
	pm := paydemand.PaperAHPMatrix()
	w := pm.PaperWeights()
	want := []float64{0.648, 0.230, 0.122}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 0.001 {
			t.Errorf("w[%d] = %v, want %v", i, w[i], want[i])
		}
	}
	c, err := pm.Consistency()
	if err != nil {
		t.Fatal(err)
	}
	if !c.Acceptable() {
		t.Errorf("paper matrix inconsistent: %+v", c)
	}
}

func TestPublicScenarioAPI(t *testing.T) {
	sc, err := paydemand.GenerateScenario(3, paydemand.WorkloadConfig{
		NumTasks:      5,
		NumUsers:      10,
		TaskPlacement: paydemand.PlacementGrid,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Tasks) != 5 || len(sc.UserLocations) != 10 {
		t.Errorf("scenario: %d tasks, %d users", len(sc.Tasks), len(sc.UserLocations))
	}
	s, err := paydemand.NewSimulationFromScenario(paydemand.Config{}, sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks != 5 {
		t.Errorf("result tasks = %d", res.Tasks)
	}
}

func TestPublicExperimentAPI(t *testing.T) {
	ids := paydemand.ExperimentIDs()
	if len(ids) != 22 {
		t.Fatalf("ExperimentIDs = %v", ids)
	}
	f, err := paydemand.RunExperiment("fig6a", paydemand.ExperimentOptions{
		Trials:    1,
		UserSweep: []int{40},
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := paydemand.RenderFigureTable(&sb, f); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fig6a") {
		t.Errorf("render output: %q", sb.String())
	}
	if err := paydemand.RenderFigureCSV(&sb, f); err != nil {
		t.Fatal(err)
	}
	if err := paydemand.RenderFigurePlot(&sb, f, 40, 8); err != nil {
		t.Fatal(err)
	}
}

func TestPublicBoardAPI(t *testing.T) {
	b, err := paydemand.NewBoard([]paydemand.Task{
		{ID: 1, Location: paydemand.Pt(10, 10), Deadline: 5, Required: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1 || b.TotalRequired() != 2 {
		t.Error("board accessors wrong")
	}
}

package paydemand

import (
	"paydemand/internal/ahp"
	"paydemand/internal/demand"
	"paydemand/internal/geo"
	"paydemand/internal/incentive"
	"paydemand/internal/selection"
	"paydemand/internal/stats"
	"paydemand/internal/task"
)

// newRNG constructs the library's seeded random generator.
func newRNG(seed int64) *stats.RNG { return stats.NewRNG(seed) }

// Geometry primitives.
type (
	// Point is a planar location in meters.
	Point = geo.Point
	// Rect is an axis-aligned rectangle.
	Rect = geo.Rect
	// Path is an ordered polyline of waypoints.
	Path = geo.Path
)

// Pt constructs a Point.
func Pt(x, y float64) Point { return geo.Pt(x, y) }

// Square returns the square area with the given side length anchored at
// the origin; the paper's evaluation area is Square(3000).
func Square(side float64) Rect { return geo.Square(side) }

// Task model.
type (
	// Task is a location-dependent sensing task specification.
	Task = task.Task
	// TaskID identifies a task.
	TaskID = task.ID
	// TaskState is the mutable progress state of one task.
	TaskState = task.State
	// Board tracks every task in a campaign.
	Board = task.Board
)

// NewBoard creates a task board from specifications.
func NewBoard(tasks []Task) (*Board, error) { return task.NewBoard(tasks) }

// Task selection (Section V of the paper).
type (
	// SelectionProblem is one user's per-round task selection instance.
	SelectionProblem = selection.Problem
	// SelectionCandidate is one selectable task.
	SelectionCandidate = selection.Candidate
	// SelectionPlan is an ordered selection with its profit accounting.
	SelectionPlan = selection.Plan
	// SelectionAlgorithm solves SelectionProblems.
	SelectionAlgorithm = selection.Algorithm
	// DPSelector is the optimal O(m^2 2^m) dynamic program.
	DPSelector = selection.DP
	// GreedySelector is the O(m^2) heuristic.
	GreedySelector = selection.Greedy
	// TwoOptSelector is greedy followed by 2-opt order improvement.
	TwoOptSelector = selection.TwoOptGreedy
	// BeamSelector is the deterministic beam search with 2-opt / or-opt
	// polish; it never returns less profit than TwoOptSelector.
	BeamSelector = selection.Beam
	// AutoSelector dispatches per instance: DP on small filtered
	// instances, beam search in the mid band, greedy + 2-opt beyond.
	AutoSelector = selection.Auto
)

// Incentive mechanisms (Sections IV and VI).
type (
	// Mechanism prices sensing tasks round by round.
	Mechanism = incentive.Mechanism
	// TaskView is the platform's per-task observation handed to a
	// mechanism.
	TaskView = incentive.TaskView
	// RewardScheme is the demand-level-to-reward rule of Eq. 7.
	RewardScheme = incentive.RewardScheme
	// OnDemandMechanism is the paper's demand-based dynamic mechanism.
	OnDemandMechanism = incentive.OnDemand
	// FixedMechanism is the fixed-reward baseline.
	FixedMechanism = incentive.Fixed
	// SteeredMechanism is Kawajiri et al.'s quality-driven mechanism.
	SteeredMechanism = incentive.Steered
)

// NewRewardScheme derives the budget-constrained reward scheme of Eq. 9:
// r0 = budget/totalRequired - lambda*(levels-1).
func NewRewardScheme(budget float64, totalRequired int, lambda float64, levels int) (RewardScheme, error) {
	return incentive.SchemeFromBudget(budget, totalRequired, lambda, demand.LevelMapper{N: levels})
}

// NewOnDemandMechanism builds the paper's mechanism with the Table I AHP
// weights.
func NewOnDemandMechanism(scheme RewardScheme) (*OnDemandMechanism, error) {
	return incentive.NewPaperOnDemand(scheme)
}

// NewFixedMechanism builds the fixed baseline; seed drives its one-time
// random level draws.
func NewFixedMechanism(scheme RewardScheme, seed int64) (*FixedMechanism, error) {
	return incentive.NewFixed(scheme, stats.NewRNG(seed))
}

// NewSteeredMechanism builds the steered baseline with the paper's raw
// constants (rewards in [5, 25]).
func NewSteeredMechanism() *SteeredMechanism { return incentive.NewSteered() }

// NewBudgetScaledSteeredMechanism builds the steered baseline scaled so
// its peak reward matches maxReward (the variant the comparison figures
// use; see DESIGN.md).
func NewBudgetScaledSteeredMechanism(maxReward float64) (*SteeredMechanism, error) {
	return incentive.NewBudgetScaledSteered(maxReward)
}

// Analytic Hierarchy Process (Section IV-B).
type (
	// PairwiseMatrix is a validated AHP comparison matrix.
	PairwiseMatrix = ahp.PairwiseMatrix
	// AHPHierarchy is a two-level AHP decision hierarchy.
	AHPHierarchy = ahp.Hierarchy
	// Consistency summarizes AHP judgment consistency (CI/CR).
	Consistency = ahp.Consistency
	// WeightMethod selects the weight-derivation method.
	WeightMethod = ahp.WeightMethod
)

// AHP weight-derivation methods.
const (
	WeightsColumnNormalizedRowMean = ahp.ColumnNormalizedRowMean
	WeightsEigenvector             = ahp.Eigenvector
	WeightsGeometricMean           = ahp.GeometricMean
)

// NewPairwiseMatrix validates rows as an AHP comparison matrix.
func NewPairwiseMatrix(rows [][]float64) (*PairwiseMatrix, error) {
	return ahp.NewPairwiseMatrix(rows)
}

// PaperAHPMatrix returns the paper's Table I example comparison matrix.
func PaperAHPMatrix() *PairwiseMatrix { return ahp.PaperExampleMatrix() }

// Demand indicator (Section IV-A/C).
type (
	// DemandConfig holds the demand-indicator weights and scales.
	DemandConfig = demand.Config
	// DemandInputs are one task's per-round observations.
	DemandInputs = demand.Inputs
	// LevelMapper maps normalized demand onto discrete levels (Table III).
	LevelMapper = demand.LevelMapper
)

// DefaultDemandConfig returns the paper-example demand configuration.
func DefaultDemandConfig() DemandConfig { return demand.DefaultConfig() }

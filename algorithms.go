package paydemand

import (
	"paydemand/internal/ahp"
	"paydemand/internal/demand"
	"paydemand/internal/geo"
	"paydemand/internal/incentive"
	"paydemand/internal/selection"
	"paydemand/internal/stats"
	"paydemand/internal/task"
)

// newRNG constructs the library's seeded random generator.
func newRNG(seed int64) *stats.RNG { return stats.NewRNG(seed) }

// Geometry primitives.
type (
	// Point is a planar location in meters.
	Point = geo.Point
	// Rect is an axis-aligned rectangle.
	Rect = geo.Rect
	// Path is an ordered polyline of waypoints.
	Path = geo.Path
)

// Pt constructs a Point.
func Pt(x, y float64) Point { return geo.Pt(x, y) }

// Square returns the square area with the given side length anchored at
// the origin; the paper's evaluation area is Square(3000).
func Square(side float64) Rect { return geo.Square(side) }

// Task model.
type (
	// Task is a location-dependent sensing task specification.
	Task = task.Task
	// TaskID identifies a task.
	TaskID = task.ID
	// TaskState is the mutable progress state of one task.
	TaskState = task.State
	// Board tracks every task in a campaign.
	Board = task.Board
)

// NewBoard creates a task board from specifications.
func NewBoard(tasks []Task) (*Board, error) { return task.NewBoard(tasks) }

// Task selection (Section V of the paper).
type (
	// SelectionProblem is one user's per-round task selection instance.
	SelectionProblem = selection.Problem
	// SelectionCandidate is one selectable task.
	SelectionCandidate = selection.Candidate
	// SelectionPlan is an ordered selection with its profit accounting.
	SelectionPlan = selection.Plan
	// SelectionAlgorithm solves SelectionProblems.
	SelectionAlgorithm = selection.Algorithm
	// DPSelector is the optimal O(m^2 2^m) dynamic program.
	DPSelector = selection.DP
	// GreedySelector is the O(m^2) heuristic.
	GreedySelector = selection.Greedy
	// TwoOptSelector is greedy followed by 2-opt order improvement.
	TwoOptSelector = selection.TwoOptGreedy
	// BeamSelector is the deterministic beam search with 2-opt / or-opt
	// polish; it never returns less profit than TwoOptSelector.
	BeamSelector = selection.Beam
	// AutoSelector dispatches per instance: DP on small filtered
	// instances, beam search in the mid band, greedy + 2-opt beyond.
	AutoSelector = selection.Auto
)

// Incentive mechanisms (Sections IV and VI).
type (
	// Mechanism prices sensing tasks round by round. Callers assemble a
	// RoundInput carrying the capabilities the mechanism declares via
	// Requires() and receive a task-ID-to-reward map back.
	Mechanism = incentive.Mechanism
	// RoundInput is the per-round bundle of observations handed to a
	// mechanism: the task views plus whichever optional capability
	// fields (bids, budget, mobility forecast, seeded stream) the
	// mechanism requires.
	RoundInput = incentive.RoundInput
	// TaskView is the platform's per-task observation handed to a
	// mechanism.
	TaskView = incentive.TaskView
	// Bid is one worker's claimed cost for sensing this round.
	Bid = incentive.Bid
	// Capabilities is the bitmask of optional RoundInput fields a
	// mechanism declares it needs.
	Capabilities = incentive.Capabilities
	// ForecastProvider predicts future neighbor counts for
	// mobility-aware mechanisms; implement it to plug in a custom
	// mobility model.
	ForecastProvider = incentive.ForecastProvider
	// MechanismRNG is the seeded deterministic stream consumed by
	// randomized mechanisms through RoundInput.RNG.
	MechanismRNG = stats.RNG
	// RewardScheme is the demand-level-to-reward rule of Eq. 7.
	RewardScheme = incentive.RewardScheme
	// OnDemandMechanism is the paper's demand-based dynamic mechanism.
	OnDemandMechanism = incentive.OnDemand
	// FixedMechanism is the fixed-reward baseline.
	FixedMechanism = incentive.Fixed
	// SteeredMechanism is Kawajiri et al.'s quality-driven mechanism.
	SteeredMechanism = incentive.Steered
	// AuctionMechanism is the budget-feasible truthful reverse auction.
	AuctionMechanism = incentive.Auction
	// IncentMeMechanism prices by expected coverage under mobility
	// uncertainty.
	IncentMeMechanism = incentive.IncentMe
)

// Capability flags a Mechanism can declare via Requires().
const (
	// CapBids asks for per-worker claimed costs in RoundInput.Bids.
	CapBids = incentive.CapBids
	// CapBudget asks for the campaign budget in RoundInput.Budget.
	CapBudget = incentive.CapBudget
	// CapMobility asks for a neighbor forecast in RoundInput.Mobility.
	CapMobility = incentive.CapMobility
	// CapRNG asks for a seeded stream in RoundInput.RNG.
	CapRNG = incentive.CapRNG
)

// NewMechanismRNG builds the seeded stream randomized mechanisms consume
// through RoundInput.RNG.
func NewMechanismRNG(seed int64) *MechanismRNG { return stats.NewRNG(seed) }

// NewRewardScheme derives the budget-constrained reward scheme of Eq. 9:
// r0 = budget/totalRequired - lambda*(levels-1).
func NewRewardScheme(budget float64, totalRequired int, lambda float64, levels int) (RewardScheme, error) {
	return incentive.SchemeFromBudget(budget, totalRequired, lambda, demand.LevelMapper{N: levels})
}

// NewOnDemandMechanism builds the paper's mechanism with the Table I AHP
// weights.
func NewOnDemandMechanism(scheme RewardScheme) (*OnDemandMechanism, error) {
	return incentive.NewPaperOnDemand(scheme)
}

// NewFixedMechanism builds the fixed baseline. Its one-time random level
// draws come from the RoundInput.RNG stream the caller supplies each
// round (see NewMechanismRNG); the mechanism declares that need via
// Requires().
func NewFixedMechanism(scheme RewardScheme) (*FixedMechanism, error) {
	return incentive.NewFixed(scheme)
}

// NewAuctionMechanism builds the budget-feasible truthful reverse
// auction; it requires worker bids and a budget in its RoundInput.
func NewAuctionMechanism() *AuctionMechanism { return incentive.NewAuction() }

// NewIncentMeMechanism builds the expected-coverage mechanism; it
// requires a mobility forecast in its RoundInput.
func NewIncentMeMechanism(scheme RewardScheme) (*IncentMeMechanism, error) {
	return incentive.NewIncentMe(scheme)
}

// NewSteeredMechanism builds the steered baseline with the paper's raw
// constants (rewards in [5, 25]).
func NewSteeredMechanism() *SteeredMechanism { return incentive.NewSteered() }

// NewBudgetScaledSteeredMechanism builds the steered baseline scaled so
// its peak reward matches maxReward (the variant the comparison figures
// use; see DESIGN.md).
func NewBudgetScaledSteeredMechanism(maxReward float64) (*SteeredMechanism, error) {
	return incentive.NewBudgetScaledSteered(maxReward)
}

// Analytic Hierarchy Process (Section IV-B).
type (
	// PairwiseMatrix is a validated AHP comparison matrix.
	PairwiseMatrix = ahp.PairwiseMatrix
	// AHPHierarchy is a two-level AHP decision hierarchy.
	AHPHierarchy = ahp.Hierarchy
	// Consistency summarizes AHP judgment consistency (CI/CR).
	Consistency = ahp.Consistency
	// WeightMethod selects the weight-derivation method.
	WeightMethod = ahp.WeightMethod
)

// AHP weight-derivation methods.
const (
	WeightsColumnNormalizedRowMean = ahp.ColumnNormalizedRowMean
	WeightsEigenvector             = ahp.Eigenvector
	WeightsGeometricMean           = ahp.GeometricMean
)

// NewPairwiseMatrix validates rows as an AHP comparison matrix.
func NewPairwiseMatrix(rows [][]float64) (*PairwiseMatrix, error) {
	return ahp.NewPairwiseMatrix(rows)
}

// PaperAHPMatrix returns the paper's Table I example comparison matrix.
func PaperAHPMatrix() *PairwiseMatrix { return ahp.PaperExampleMatrix() }

// Demand indicator (Section IV-A/C).
type (
	// DemandConfig holds the demand-indicator weights and scales.
	DemandConfig = demand.Config
	// DemandInputs are one task's per-round observations.
	DemandInputs = demand.Inputs
	// LevelMapper maps normalized demand onto discrete levels (Table III).
	LevelMapper = demand.LevelMapper
)

// DefaultDemandConfig returns the paper-example demand configuration.
func DefaultDemandConfig() DemandConfig { return demand.DefaultConfig() }
